//! The batching scheduler at the heart of `parrot-serve`.
//!
//! [`Engine`] owns the per-tenant FIFO queues, the deficit round-robin
//! fairness state, the quality budgets, and the shared
//! [`BatchEvaluator`]. It is deliberately single-threaded and clocked by
//! *caller-supplied* microsecond timestamps: the daemon feeds it wall
//! time, the tests feed it a synthetic clock, and every
//! backpressure/timeout/fairness behaviour becomes exactly reproducible.
//! The server layer (`server.rs`) only adds sockets, threads, and a
//! mutex around this type.
//!
//! # Scheduling
//!
//! Tenants share one simulated NPU, so serving tenant B after tenant A
//! pays the context-switch cost measured in `tests/context_switch.rs`:
//! the config word stream of the outgoing tenant is saved and the
//! incoming one restored at one cycle per word
//! ([`NpuConfig::encoded_len`] each way). The scheduler therefore
//! batches per tenant — one flush serves up to
//! [`EngineConfig::max_batch`] invocations from a *single* queue — and
//! rotates tenants by deficit round-robin: each visit grants
//! `weight × quantum` credits, each served invocation spends one, so
//! long-run NPU share converges to the weight ratio while any single
//! flush stays dense enough for the batched SIMD kernel.
//!
//! # Degradation ladder
//!
//! Per request, in order: queue full → reject with retry-after (the
//! client's work is *not* lost, just deferred); deadline passed while
//! queued → timeout reply; tenant quality budget drained → execute the
//! *precise* region code instead of the NPU (graceful degradation, paper
//! §6's quality guarantees applied at serving time); otherwise → batched
//! NPU invocation, bit-identical to [`NpuConfig::evaluate`].

use crate::proto::{ErrorCode, InvokeMode};
use npu::{BatchEvaluator, NpuConfig};
use parrot::{ErrorBudget, RegionSpec};
use std::collections::{BTreeMap, HashMap, VecDeque};
use telemetry::{Histogram, ServingSummary, TenantServing};

/// Tuning knobs for the [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-tenant queue bound; a submit beyond it is rejected with
    /// backpressure instead of growing memory without limit.
    pub queue_cap: usize,
    /// Most invocations served from one tenant per flush. Defaults to
    /// [`ann::LANES`] so a full flush is exactly one full-width batch.
    pub max_batch: usize,
    /// Deadline applied when a request carries `deadline_us == 0`.
    pub default_deadline_us: u64,
    /// Back-off hint carried in rejection replies.
    pub retry_after_us: u64,
    /// Deficit round-robin credits granted per weight unit per visit.
    pub quantum: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_cap: 128,
            max_batch: ann::LANES,
            default_deadline_us: 1_000_000,
            retry_after_us: 500,
            quantum: 4,
        }
    }
}

/// One registered tenant: its trained NPU config, optional precise
/// region code (required for whole-region offload and for budget
/// degradation), scheduling weight, and quality budget.
pub struct TenantSpec {
    /// Queue / budget / config selector used on the wire.
    pub name: String,
    /// Deficit round-robin weight (≥ 1; long-run NPU share is
    /// proportional to it under saturation).
    pub weight: u32,
    /// The tenant's trained NPU configuration.
    pub config: NpuConfig,
    /// The original precise region, when available. Without it the
    /// tenant cannot request precise offload and cannot be degraded —
    /// a drained budget then keeps serving the NPU path (documented
    /// accuracy loss is better than no service at all).
    pub region: Option<RegionSpec>,
    /// Cumulative mean-absolute-error budget; drained → degrade.
    pub budget: ErrorBudget,
    /// Audit every Nth NPU invocation against the precise region to
    /// charge the budget (0 disables auditing). Mirrors the sampling
    /// quality guard in `crates/core/src/guard.rs`.
    pub sample_period: u64,
}

/// Result of [`Engine::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Accepted; a [`Completion`] with this token will follow.
    Enqueued {
        /// Engine-assigned completion token.
        token: u64,
    },
    /// Bounded queue full — backpressure, retry after the hint.
    Rejected {
        /// Suggested back-off, microseconds.
        retry_after_us: u64,
    },
    /// No tenant registered under that name.
    UnknownTenant,
    /// Input length does not match the tenant's topology.
    BadDimensions {
        /// The tenant topology's input arity.
        expected: usize,
        /// The submitted input length.
        got: usize,
    },
    /// Precise offload requested but the tenant has no region code.
    NoPrecisePath,
}

/// How one accepted request finished.
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionKind {
    /// Served with outputs.
    Done {
        /// The invocation's outputs.
        outputs: Vec<f32>,
        /// `true` when the precise CPU path ran (explicit offload or
        /// budget degradation), `false` for the batched NPU path.
        precise: bool,
        /// Time spent queued, microseconds.
        queued_us: u64,
    },
    /// Dropped: the deadline passed before service.
    TimedOut,
    /// Precise execution faulted.
    Failed {
        /// Failure class for the wire reply.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One finished request, matched to its submit by `token`.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Token returned by [`Engine::submit`].
    pub token: u64,
    /// Owning tenant's name.
    pub tenant: String,
    /// Client-chosen request id, echoed for the reply.
    pub request_id: u64,
    /// Outcome.
    pub kind: CompletionKind,
}

struct PendingInvocation {
    token: u64,
    request_id: u64,
    enqueued_us: u64,
    /// Absolute drop-dead time.
    deadline_us: u64,
    mode: InvokeMode,
    inputs: Vec<f32>,
}

#[derive(Default)]
struct TenantCounters {
    submitted: u64,
    completed: u64,
    npu_served: u64,
    precise_served: u64,
    rejected: u64,
    timed_out: u64,
}

struct TenantState {
    spec: TenantSpec,
    queue: VecDeque<PendingInvocation>,
    /// Deficit round-robin credit balance (invocations it may serve).
    deficit: u64,
    /// NPU invocations served so far, for the audit sample period.
    npu_invocations: u64,
    counters: TenantCounters,
    latency_us: Histogram,
}

/// The batching scheduler: per-tenant bounded FIFO queues in front of
/// one shared, time-multiplexed NPU. See the module docs for the
/// scheduling and degradation policies.
pub struct Engine {
    cfg: EngineConfig,
    tenants: Vec<TenantState>,
    by_name: HashMap<String, usize>,
    evaluator: BatchEvaluator,
    next_token: u64,
    /// Next tenant index the round-robin scan starts from.
    rr_cursor: usize,
    /// Tenant whose config currently occupies the simulated NPU.
    loaded_tenant: Option<usize>,
    requests_total: u64,
    protocol_errors: u64,
    batches: u64,
    batch_invocations: u64,
    context_switches: u64,
    context_switch_cycles: u64,
    queue_depth: Histogram,
    queue_wait_us: Histogram,
    batch_occupancy: Histogram,
    // Scratch buffers reused across flushes.
    flat_inputs: Vec<f32>,
    npu_outputs: Vec<f32>,
}

impl Engine {
    /// Builds an engine serving `tenants` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list, a duplicate tenant name, a zero
    /// weight, or a zero queue/batch capacity — all construction-time
    /// configuration bugs, not runtime events.
    pub fn new(cfg: EngineConfig, tenants: Vec<TenantSpec>) -> Engine {
        assert!(!tenants.is_empty(), "engine needs at least one tenant");
        assert!(cfg.queue_cap > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "batch capacity must be positive");
        assert!(cfg.quantum > 0, "DRR quantum must be positive");
        let mut by_name = HashMap::new();
        let states: Vec<TenantState> = tenants
            .into_iter()
            .map(|spec| {
                assert!(spec.weight > 0, "tenant {} has zero weight", spec.name);
                let prev = by_name.insert(spec.name.clone(), by_name.len());
                assert!(prev.is_none(), "duplicate tenant name {}", spec.name);
                TenantState {
                    spec,
                    queue: VecDeque::new(),
                    deficit: 0,
                    npu_invocations: 0,
                    counters: TenantCounters::default(),
                    latency_us: Histogram::default(),
                }
            })
            .collect();
        Engine {
            cfg,
            tenants: states,
            by_name,
            evaluator: BatchEvaluator::new(),
            next_token: 1,
            rr_cursor: 0,
            loaded_tenant: None,
            requests_total: 0,
            protocol_errors: 0,
            batches: 0,
            batch_invocations: 0,
            context_switches: 0,
            context_switch_cycles: 0,
            queue_depth: Histogram::default(),
            queue_wait_us: Histogram::default(),
            batch_occupancy: Histogram::default(),
            flat_inputs: Vec::new(),
            npu_outputs: Vec::new(),
        }
    }

    /// Offers one request at virtual time `now_us`. `deadline_us` is
    /// *relative* (0 = the configured default). Accepted requests later
    /// surface as [`Completion`]s from [`flush`](Self::flush) or
    /// [`expire`](Self::expire).
    pub fn submit(
        &mut self,
        tenant: &str,
        request_id: u64,
        deadline_us: u64,
        mode: InvokeMode,
        inputs: Vec<f32>,
        now_us: u64,
    ) -> SubmitOutcome {
        self.requests_total += 1;
        let Some(&idx) = self.by_name.get(tenant) else {
            return SubmitOutcome::UnknownTenant;
        };
        let state = &mut self.tenants[idx];
        state.counters.submitted += 1;
        let expected = state.spec.config.topology().inputs();
        if inputs.len() != expected {
            return SubmitOutcome::BadDimensions {
                expected,
                got: inputs.len(),
            };
        }
        if mode == InvokeMode::Precise && state.spec.region.is_none() {
            return SubmitOutcome::NoPrecisePath;
        }
        if state.queue.len() >= self.cfg.queue_cap {
            state.counters.rejected += 1;
            return SubmitOutcome::Rejected {
                retry_after_us: self.cfg.retry_after_us,
            };
        }
        let relative = if deadline_us == 0 {
            self.cfg.default_deadline_us
        } else {
            deadline_us
        };
        let token = self.next_token;
        self.next_token += 1;
        state.queue.push_back(PendingInvocation {
            token,
            request_id,
            enqueued_us: now_us,
            deadline_us: now_us.saturating_add(relative),
            mode,
            inputs,
        });
        self.queue_depth.observe(state.queue.len() as f64);
        SubmitOutcome::Enqueued { token }
    }

    /// Counts one undecodable or invalid frame (kept here so the
    /// summary owns every counter the CI gate reads).
    pub fn record_protocol_error(&mut self) {
        self.protocol_errors += 1;
    }

    /// Drops every queued request whose deadline lies at or before
    /// `now_us`, appending a [`CompletionKind::TimedOut`] completion for
    /// each. Deterministic: depends only on queue contents and `now_us`.
    pub fn expire(&mut self, now_us: u64, out: &mut Vec<Completion>) {
        for state in &mut self.tenants {
            // Deadlines are not necessarily monotone in arrival order
            // (clients pick them), so filter the whole queue.
            let mut kept = VecDeque::with_capacity(state.queue.len());
            for item in state.queue.drain(..) {
                if item.deadline_us <= now_us {
                    state.counters.timed_out += 1;
                    out.push(Completion {
                        token: item.token,
                        tenant: state.spec.name.clone(),
                        request_id: item.request_id,
                        kind: CompletionKind::TimedOut,
                    });
                } else {
                    kept.push_back(item);
                }
            }
            state.queue = kept;
        }
    }

    /// Serves at most one tenant's batch at virtual time `now_us`,
    /// appending completions. Returns `true` when anything was served
    /// (call again to drain further tenants).
    ///
    /// Expired requests are timed out (never served) first, so a flush
    /// at time T observes exactly the queues a reaper running at T
    /// would leave behind.
    pub fn flush(&mut self, now_us: u64, out: &mut Vec<Completion>) -> bool {
        self.expire(now_us, out);
        let n = self.tenants.len();
        for step in 0..n {
            let idx = (self.rr_cursor + step) % n;
            if self.tenants[idx].queue.is_empty() {
                self.tenants[idx].deficit = 0;
                continue;
            }
            // Grant this visit's credits, serve as many as credits and
            // batch capacity allow, and resume the scan *after* this
            // tenant next time.
            let state = &mut self.tenants[idx];
            state.deficit = state
                .deficit
                .saturating_add(u64::from(state.spec.weight) * self.cfg.quantum);
            let n_serve = state
                .queue
                .len()
                .min(self.cfg.max_batch)
                .min(state.deficit as usize);
            state.deficit -= n_serve as u64;
            if state.queue.len() == n_serve {
                state.deficit = 0;
            }
            self.rr_cursor = (idx + 1) % n;
            self.serve_batch(idx, n_serve, now_us, out);
            return true;
        }
        false
    }

    /// Serves the first `n_serve` queued invocations of tenant `idx`.
    fn serve_batch(&mut self, idx: usize, n_serve: usize, now_us: u64, out: &mut Vec<Completion>) {
        let state = &mut self.tenants[idx];
        let items: Vec<PendingInvocation> = state.queue.drain(..n_serve).collect();
        let n_in = state.spec.config.topology().inputs();
        let n_out = state.spec.config.topology().outputs();

        // Route each invocation: explicit precise offload, budget
        // degradation (drained + region available), else NPU.
        let degrade = state.spec.budget.drained() && state.spec.region.is_some();
        let mut npu_items: Vec<PendingInvocation> = Vec::new();
        let mut precise_items: Vec<PendingInvocation> = Vec::new();
        for item in items {
            match item.mode {
                InvokeMode::Precise => precise_items.push(item),
                InvokeMode::Npu if degrade => precise_items.push(item),
                InvokeMode::Npu => npu_items.push(item),
            }
        }

        if !npu_items.is_empty() {
            // The simulated NPU is time-shared: loading this tenant's
            // config evicts the previous one, costing one cycle per
            // config word saved plus one per word restored (the cost
            // model pinned by tests/context_switch.rs).
            if self.loaded_tenant != Some(idx) {
                let save = self
                    .loaded_tenant
                    .map(|prev| self.tenants[prev].spec.config.encoded_len())
                    .unwrap_or(0);
                let restore = self.tenants[idx].spec.config.encoded_len();
                self.context_switches += 1;
                self.context_switch_cycles += (save + restore) as u64;
                self.loaded_tenant = Some(idx);
            }

            self.flat_inputs.clear();
            for item in &npu_items {
                self.flat_inputs.extend_from_slice(&item.inputs);
            }
            let state = &mut self.tenants[idx];
            self.evaluator
                .run_flat(&state.spec.config, &self.flat_inputs, &mut self.npu_outputs);
            self.batches += 1;
            self.batch_invocations += npu_items.len() as u64;
            self.batch_occupancy.observe(npu_items.len() as f64);
            debug_assert_eq!(self.npu_outputs.len(), npu_items.len() * n_out);
            debug_assert_eq!(self.flat_inputs.len(), npu_items.len() * n_in);

            for (i, item) in npu_items.into_iter().enumerate() {
                let outputs = self.npu_outputs[i * n_out..][..n_out].to_vec();
                // Sampled quality audit: every Nth NPU invocation also
                // runs the precise region and charges the mean absolute
                // output error to the tenant's budget.
                state.npu_invocations += 1;
                if state.spec.sample_period > 0
                    && state
                        .npu_invocations
                        .is_multiple_of(state.spec.sample_period)
                {
                    if let Some(region) = &state.spec.region {
                        let charge = match region.evaluate(&item.inputs) {
                            Ok(precise) => {
                                let sum: f64 = precise
                                    .iter()
                                    .zip(&outputs)
                                    .map(|(p, a)| f64::from((p - a).abs()))
                                    .sum();
                                sum / precise.len().max(1) as f64
                            }
                            // An unevaluable audit means quality is
                            // unverifiable — drain conservatively.
                            Err(_) => f64::NAN,
                        };
                        state.spec.budget.charge(charge);
                    }
                }
                let queued_us = now_us.saturating_sub(item.enqueued_us);
                state.counters.completed += 1;
                state.counters.npu_served += 1;
                state.latency_us.observe(queued_us as f64);
                self.queue_wait_us.observe(queued_us as f64);
                out.push(Completion {
                    token: item.token,
                    tenant: state.spec.name.clone(),
                    request_id: item.request_id,
                    kind: CompletionKind::Done {
                        outputs,
                        precise: false,
                        queued_us,
                    },
                });
            }
        }

        let state = &mut self.tenants[idx];
        for item in precise_items {
            let region = state
                .spec
                .region
                .as_ref()
                .expect("precise routing guarantees a region");
            let queued_us = now_us.saturating_sub(item.enqueued_us);
            match region.evaluate(&item.inputs) {
                Ok(outputs) => {
                    state.counters.completed += 1;
                    state.counters.precise_served += 1;
                    state.latency_us.observe(queued_us as f64);
                    self.queue_wait_us.observe(queued_us as f64);
                    out.push(Completion {
                        token: item.token,
                        tenant: state.spec.name.clone(),
                        request_id: item.request_id,
                        kind: CompletionKind::Done {
                            outputs,
                            precise: true,
                            queued_us,
                        },
                    });
                }
                Err(e) => out.push(Completion {
                    token: item.token,
                    tenant: state.spec.name.clone(),
                    request_id: item.request_id,
                    kind: CompletionKind::Failed {
                        code: ErrorCode::ExecutionFailed,
                        message: e.to_string(),
                    },
                }),
            }
        }
    }

    /// Total queued invocations across tenants.
    pub fn pending_total(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Whether some tenant already fills a whole flush.
    pub fn has_full_batch(&self) -> bool {
        self.tenants
            .iter()
            .any(|t| t.queue.len() >= self.cfg.max_batch)
    }

    /// Enqueue time of the oldest queued invocation, if any (drives the
    /// daemon's batch-window flush decision).
    pub fn oldest_enqueued_us(&self) -> Option<u64> {
        self.tenants
            .iter()
            .filter_map(|t| t.queue.front().map(|p| p.enqueued_us))
            .min()
    }

    /// Current queue depth of `tenant` (None for unknown names).
    pub fn queue_len(&self, tenant: &str) -> Option<usize> {
        self.by_name
            .get(tenant)
            .map(|&i| self.tenants[i].queue.len())
    }

    /// Whether `tenant`'s quality budget is drained.
    pub fn budget_drained(&self, tenant: &str) -> Option<bool> {
        self.by_name
            .get(tenant)
            .map(|&i| self.tenants[i].spec.budget.drained())
    }

    /// The tenant's NPU config (tests recompute reference outputs
    /// through it to check bit-identity).
    pub fn config_of(&self, tenant: &str) -> Option<&NpuConfig> {
        self.by_name
            .get(tenant)
            .map(|&i| &self.tenants[i].spec.config)
    }

    /// Queue-depth samples (observed at each accepted submit).
    pub fn queue_depth_hist(&self) -> &Histogram {
        &self.queue_depth
    }

    /// Time-in-queue samples for served invocations, microseconds.
    pub fn queue_wait_hist(&self) -> &Histogram {
        &self.queue_wait_us
    }

    /// Invocations-per-flush samples for NPU batches.
    pub fn batch_occupancy_hist(&self) -> &Histogram {
        &self.batch_occupancy
    }

    /// Snapshot of the serving accounting after `wall_us` of service.
    ///
    /// The fairness index is Jain's over weight-normalized completed
    /// throughput `x_i = completed_i / weight_i`, taken across tenants
    /// that were offered any load: `J = (Σx)² / (n·Σx²)`, 1.0 when every
    /// tenant got exactly its weighted share.
    pub fn summary(&self, wall_us: u64) -> ServingSummary {
        let mut completed = 0u64;
        let mut npu_served = 0u64;
        let mut precise_served = 0u64;
        let mut rejected = 0u64;
        let mut timed_out = 0u64;
        let mut shares: Vec<f64> = Vec::new();
        let mut tenants = BTreeMap::new();
        for t in &self.tenants {
            let c = &t.counters;
            completed += c.completed;
            npu_served += c.npu_served;
            precise_served += c.precise_served;
            rejected += c.rejected;
            timed_out += c.timed_out;
            if c.submitted > 0 {
                shares.push(c.completed as f64 / f64::from(t.spec.weight));
            }
            tenants.insert(
                t.spec.name.clone(),
                TenantServing {
                    weight: u64::from(t.spec.weight),
                    completed: c.completed,
                    npu_served: c.npu_served,
                    precise_served: c.precise_served,
                    rejected: c.rejected,
                    timed_out: c.timed_out,
                    p50_us: t.latency_us.p50(),
                    p99_us: t.latency_us.p99(),
                    p999_us: t.latency_us.p999(),
                },
            );
        }
        let sum: f64 = shares.iter().sum();
        let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
        ServingSummary {
            requests_total: self.requests_total,
            completed,
            npu_served,
            precise_served,
            rejected,
            timed_out,
            protocol_errors: self.protocol_errors,
            batches: self.batches,
            batch_occupancy_mean: if self.batches == 0 {
                0.0
            } else {
                self.batch_invocations as f64 / self.batches as f64
            },
            context_switches: self.context_switches,
            context_switch_cycles: self.context_switch_cycles,
            invocations_per_s: if wall_us == 0 {
                0.0
            } else {
                completed as f64 * 1e6 / wall_us as f64
            },
            fairness_index: if sum_sq > 0.0 {
                (sum * sum) / (shares.len() as f64 * sum_sq)
            } else {
                0.0
            },
            tenants,
        }
    }

    /// Tenant names in registration order (the wire has no listing
    /// request; the daemon logs this at startup).
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.spec.name.clone()).collect()
    }
}

/// Iterates [`Engine::flush`] until no tenant has queued work,
/// collecting all completions. Convenience for drain-on-shutdown and
/// for tests that want the steady state after a burst.
pub fn drain(engine: &mut Engine, now_us: u64, out: &mut Vec<Completion>) {
    while engine.flush(now_us, out) {}
}

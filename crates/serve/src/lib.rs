//! `parrot-serve`: a long-running invocation server in front of the
//! simulated NPU.
//!
//! The paper's deployment model is one program, one trained network,
//! one NPU. This crate explores the serving-system shape of the same
//! hardware: many *tenants* (each a Parrot-transformed region with its
//! own trained [`npu::NpuConfig`]) share one NPU behind a daemon that
//! accepts invocation requests over a socket, coalesces them into
//! SIMD-width batches ([`npu::BatchEvaluator`]), schedules
//! tenants weighted-fairly against the config context-switch cost, and
//! enforces per-tenant quality budgets with graceful degradation to the
//! precise CPU path.
//!
//! Layers, bottom up:
//!
//! - [`proto`] — versioned, length-prefixed wire protocol (total
//!   decoder: arbitrary bytes never panic);
//! - [`engine`] — the deterministic batching scheduler: bounded
//!   per-tenant queues, backpressure, deadlines, deficit round-robin,
//!   budget-driven degradation; clocked by caller-supplied time;
//! - [`server`] — sockets and threads around the engine (accept /
//!   reader / batcher / reaper);
//! - [`client`] — blocking client used by the load generator and tests;
//! - [`fleet`] — deterministic tenant derivation so daemon and bench
//!   agree on configs without shipping them over the wire.
//!
//! Binaries: `parrot-serve` (the daemon) and `parrot-serve-bench` (the
//! open/closed-loop load generator that writes
//! `results/serve_baseline.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod engine;
pub mod fleet;
pub mod proto;
pub mod server;

pub use client::Client;
pub use engine::{Completion, CompletionKind, Engine, EngineConfig, SubmitOutcome, TenantSpec};
pub use fleet::{derive_fleet, request_inputs, FleetOptions};
pub use proto::{ErrorCode, InvokeMode, ProtoError, Reply, Request, PROTO_VERSION};
pub use server::{AnyStream, Listen, RunStats, ServeOptions, Server};

//! Minimal blocking client for the `parrot-serve` protocol, shared by
//! the load generator, the integration tests, and ad-hoc tooling.

use crate::proto::{read_frame, write_frame, Reply, Request};
use crate::server::{AnyStream, Listen};
use std::io::{self, Read};

/// One connection speaking the framed protocol.
pub struct Client {
    stream: AnyStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the socket connect error.
    pub fn connect(addr: &Listen) -> io::Result<Client> {
        Ok(Client {
            stream: AnyStream::connect(addr)?,
        })
    }

    /// Sends one request frame without waiting for the reply (windowed
    /// pipelining: send N, then collect N).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let mut payload = Vec::new();
        req.encode(&mut payload);
        write_frame(&mut self.stream, &payload)
    }

    /// Blocks for the next reply frame.
    ///
    /// # Errors
    ///
    /// Fails with `UnexpectedEof` if the server closed the connection,
    /// `InvalidData` if the frame does not decode as a reply.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let payload = loop {
            match read_frame(&mut self.stream) {
                Ok(Some(p)) => break p,
                Ok(None) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            }
        };
        Reply::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}")))
    }

    /// Applies a read timeout so [`try_recv`](Self::try_recv) can poll.
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Polls for a reply; `Ok(None)` when none arrived within the read
    /// timeout (open-loop senders interleave this between sends).
    ///
    /// # Errors
    ///
    /// Same failures as [`recv`](Self::recv).
    pub fn try_recv(&mut self) -> io::Result<Option<Reply>> {
        match read_frame(&mut self.stream) {
            Ok(Some(p)) => Reply::decode(&p)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}"))),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// One request–reply round trip.
    ///
    /// # Errors
    ///
    /// Propagates [`send`](Self::send) and [`recv`](Self::recv) errors.
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        self.send(req)?;
        self.recv()
    }

    /// Raw reads for protocol-abuse tests (send arbitrary bytes, watch
    /// the server's reaction).
    pub fn stream_mut(&mut self) -> &mut (impl Read + io::Write) {
        &mut self.stream
    }
}

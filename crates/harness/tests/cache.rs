//! Cache semantics: a warm re-run does zero work, and invalidation is
//! exactly as wide as the Merkle key chain implies.

mod common;

use harness::run_sweep;

#[test]
fn warm_run_hits_everything_and_hyperparameter_change_invalidates_downstream_only() {
    let dir = common::temp_dir("invalidation");
    let mut spec = common::tiny_spec(&["sobel"]);
    spec.jobs = 2;
    spec.cache_dir = Some(dir.clone());

    // Cold: every job executes and is written back.
    // The Report experiment schedules observe, train, sim_cpu, sim_npu,
    // outputs_base, outputs_npu, and report — seven jobs.
    let cold = run_sweep(&spec).expect("cold sweep runs");
    assert!(cold.ok(), "cold failures:\n{}", cold.failure_summary());
    assert_eq!(cold.scheduler.jobs_total, 7);
    assert_eq!(cold.scheduler.jobs_executed, 7);
    assert_eq!(cold.scheduler.jobs_from_cache, 0);
    assert_eq!(cold.scheduler.cache_writes, 7);

    // Warm: identical spec, zero bodies run, reports byte-identical.
    let warm = run_sweep(&spec).expect("warm sweep runs");
    assert!(warm.ok(), "warm failures:\n{}", warm.failure_summary());
    assert!(warm.scheduler.fully_warm(), "{:?}", warm.scheduler);
    assert_eq!(warm.scheduler.jobs_executed, 0);
    assert_eq!(warm.scheduler.cache_hits, 7);
    assert!((warm.scheduler.hit_rate() - 1.0).abs() < 1e-12);
    assert_eq!(
        cold.reports()[0].to_json(),
        warm.reports()[0].to_json(),
        "warm report must match the cold one byte for byte"
    );

    // Change one training hyperparameter: observe's key holds only the
    // region IR, dataset digest, and scale, and sim_cpu's / outputs_base's
    // keys have no training input at all — all three must still hit.
    // train, sim_npu, outputs_npu, and report sit downstream of the
    // changed config and must re-run.
    let mut changed = spec.clone();
    changed.compile.search.train.epochs += 1;
    let partial = run_sweep(&changed).expect("partial sweep runs");
    assert!(
        partial.ok(),
        "partial failures:\n{}",
        partial.failure_summary()
    );
    assert_eq!(
        partial.scheduler.jobs_from_cache, 3,
        "observe, sim_cpu, and outputs_base must hit: {:?}",
        partial.scheduler
    );
    assert_eq!(
        partial.scheduler.jobs_executed, 4,
        "train, sim_npu, outputs_npu, report must re-run: {:?}",
        partial.scheduler
    );

    let _ = std::fs::remove_dir_all(&dir);
}

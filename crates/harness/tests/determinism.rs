//! The harness's determinism contract: worker count changes wall-clock,
//! never results.

mod common;

use harness::run_sweep;

#[test]
fn jobs_4_sweep_is_byte_identical_to_jobs_1() {
    let spec = common::tiny_spec(&["fft", "sobel"]);

    let mut serial_spec = spec.clone();
    serial_spec.jobs = 1;
    let serial = run_sweep(&serial_spec).expect("serial sweep runs");
    assert!(
        serial.ok(),
        "serial failures:\n{}",
        serial.failure_summary()
    );

    let mut parallel_spec = spec;
    parallel_spec.jobs = 4;
    let parallel = run_sweep(&parallel_spec).expect("parallel sweep runs");
    assert!(
        parallel.ok(),
        "parallel failures:\n{}",
        parallel.failure_summary()
    );

    let serial_json: Vec<String> = serial.reports().iter().map(|r| r.to_json()).collect();
    let parallel_json: Vec<String> = parallel.reports().iter().map(|r| r.to_json()).collect();
    assert_eq!(serial_json.len(), 2, "one report per benchmark");
    assert_eq!(
        serial_json, parallel_json,
        "per-benchmark reports must be byte-identical across --jobs settings"
    );
}

#[test]
fn root_seed_reaches_the_trained_network() {
    // Different root seeds must produce genuinely different training runs
    // (otherwise the seed-derivation plumbing is dead code).
    let mut a_spec = common::tiny_spec(&["sobel"]);
    a_spec.jobs = 2;
    let mut b_spec = a_spec.clone();
    b_spec.root_seed = a_spec.root_seed.wrapping_add(1);

    let a = run_sweep(&a_spec).expect("sweep a runs");
    let b = run_sweep(&b_spec).expect("sweep b runs");
    assert!(a.ok() && b.ok());
    let train_a = a.artifact("sobel", "train").unwrap().as_train().unwrap();
    let train_b = b.artifact("sobel", "train").unwrap().as_train().unwrap();
    assert_ne!(
        train_a.outcome.best.test_mse, train_b.outcome.best.test_mse,
        "root seed should perturb training"
    );
}

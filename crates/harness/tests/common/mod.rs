//! Shared helpers for the harness integration tests: a deliberately tiny
//! training budget so debug-mode sweeps stay fast.

// Each integration-test binary compiles its own copy of this module and
// not all of them use every helper.
#![allow(dead_code)]

use ann::{SearchParams, TrainParams};
use benchmarks::Scale;
use harness::{Experiment, SweepSpec};
use npu::NpuParams;
use parrot::CompileParams;
use std::path::PathBuf;

pub fn tiny_params() -> CompileParams {
    CompileParams {
        search: SearchParams {
            max_hidden_layers: 1,
            max_hidden_neurons: 4,
            train: TrainParams {
                epochs: 20,
                learning_rate: 0.05,
                momentum: 0.9,
                ..TrainParams::default()
            },
            epoch_flops_budget: None,
            ..SearchParams::default()
        },
        npu: NpuParams::default(),
        max_training_samples: 120,
    }
}

pub fn tiny_spec(benches: &[&str]) -> SweepSpec {
    let mut spec = SweepSpec::new("harness-test", "fast", Scale::small(), tiny_params());
    spec.benches = benches.iter().map(|s| (*s).to_string()).collect();
    spec.experiments = vec![Experiment::Report];
    spec
}

/// A fresh (removed-if-present) temp directory unique to `tag`.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harness-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

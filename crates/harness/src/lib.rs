//! Parallel experiment orchestration for the Parrot pipeline.
//!
//! Every experiment is a node in a dependency-aware job DAG
//! (`observe(bench)` → `train(bench, topology)` → `sim_cpu` / `sim_npu`
//! → `energy` → `report`), executed on a work-stealing thread pool sized
//! by `available_parallelism` (overridable with `--jobs N`). Job inputs —
//! region IR hash, dataset digest, training config, µarch/NPU config,
//! root seed — form content-addressed cache keys; artifacts persist under
//! a cache directory so re-running a sweep with unchanged inputs is a set
//! of cache hits and an interrupted sweep resumes where it stopped.
//!
//! Determinism contract: per-job seeds derive from the root seed and the
//! job's identity, and job bodies are pure functions of their
//! dependencies' artifacts, so a `--jobs 8` run is bit-identical to a
//! `--jobs 1` run — parallelism changes wall-clock, never results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod dag;
pub mod exec;
pub mod hash;
pub mod pipeline;
pub mod sweep;

pub use artifact::{Artifact, CountsArtifact, EnergyArtifact, TimingArtifact, TrainArtifact};
pub use cache::{ArtifactCache, CacheStats};
pub use dag::{Job, JobDag, JobFn, JobId};
pub use exec::{execute, ExecStats, JobResult};
pub use hash::KeyHasher;
pub use pipeline::PIPELINE_VERSION;
pub use sweep::{
    run_sweep, Experiment, JobFailure, StagePlan, SweepResult, SweepSpec, DEFAULT_LINK_LATENCIES,
    DEFAULT_PE_COUNTS, DEFAULT_ROOT_SEED,
};

//! Building one benchmark's job pipeline inside the sweep DAG.
//!
//! The canonical chain is
//!
//! ```text
//! observe ──► train ──► outputs_npu / counts_npu / sim_npu / sim_ideal /
//!                        sim_soft / sim_link_* / sim_pes_*
//! outputs_base / counts_base / sim_cpu            (no training needed)
//! energy  ◄── sim_cpu + sim_npu + sim_ideal
//! report  ◄── train + sim_cpu + sim_npu + outputs_base + outputs_npu
//! ```
//!
//! Cache keys are Merkle-style: every downstream key folds in its
//! upstream keys, so changing a training hyperparameter re-keys `train`
//! and everything after it while `observe` (whose key holds only the
//! region IR, the dataset digest, and the scale) still hits.

use crate::artifact::{Artifact, CountsArtifact, EnergyArtifact, TimingArtifact, TrainArtifact};
use crate::dag::JobDag;
use crate::hash::KeyHasher;
use crate::sweep::StagePlan;
use benchmarks::{benchmark_by_name, runner, AppVariant, Benchmark, Scale};
use energy::{EnergyModel, EnergyParams};
use parrot::{CompileParams, CompiledRegion};
use std::sync::Arc;
use uarch::CoreConfig;

/// Bumped whenever simulator, application-glue, or artifact semantics
/// change in a way the other key inputs cannot see; folded into every
/// cache key so stale artifacts from older pipeline versions never hit.
///
/// v2: `TimingArtifact` gained `npu_invocation_cycles` and the report
/// schema moved to v4 (distributions section).
///
/// v3: the report schema moved to v6 (serving section), changing the
/// serialized `Report` artifact layout.
pub const PIPELINE_VERSION: u64 = 3;

fn base_hasher(tag: &str) -> KeyHasher {
    let mut h = KeyHasher::new(tag);
    h.update_u64(PIPELINE_VERSION);
    h
}

/// Canonical search parameters for hashing: the thread count steers only
/// the parallelism of candidate training (results are thread-count
/// independent), so it is zeroed to keep keys identical across `--jobs`
/// settings and machines.
fn canonical_search(params: &CompileParams) -> ann::SearchParams {
    let mut search = params.search.clone();
    search.threads = 0;
    search
}

fn lookup(name: &str) -> Result<Box<dyn Benchmark>, String> {
    benchmark_by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))
}

fn assemble(
    name: &str,
    train: &TrainArtifact,
    params: &CompileParams,
) -> Result<(Box<dyn Benchmark>, CompiledRegion), String> {
    let bench = lookup(name)?;
    let region = bench.region();
    let compiled = CompiledRegion::assemble(
        &region,
        train.outcome.clone(),
        train.input_norm.clone(),
        train.output_norm.clone(),
        params.npu.clone(),
    )
    .map_err(|e| format!("{name}: assemble failed: {e}"))?;
    Ok((bench, compiled))
}

fn timed(
    bench: &dyn Benchmark,
    variant: &AppVariant<'_>,
    scale: &Scale,
    cfg: CoreConfig,
) -> Result<TimingArtifact, String> {
    let app = bench.build_app(variant, scale);
    let (_, stats, npu) =
        runner::run_timed(&app, variant, cfg).map_err(|e| format!("timed run failed: {e}"))?;
    Ok(timing_artifact(stats, npu))
}

fn timing_artifact(stats: uarch::SimStats, npu: Option<runner::NpuRunStats>) -> TimingArtifact {
    let (npu, npu_invocation_cycles) = match npu {
        Some(n) => (Some(n.stats), Some(n.invocation_cycles)),
        None => (None, None),
    };
    TimingArtifact {
        stats,
        npu,
        npu_invocation_cycles,
    }
}

/// The per-benchmark inputs of [`add_benchmark_jobs`].
pub struct BenchJobs<'a> {
    /// Benchmark name.
    pub name: &'a str,
    /// Input scale.
    pub scale: Scale,
    /// Compile parameters carrying the benchmark's derived search seed.
    pub params: Arc<CompileParams>,
    /// Energy-model parameters.
    pub energy: EnergyParams,
    /// Suite name stamped into the run report.
    pub suite: &'a str,
    /// Run mode stamped into the run report.
    pub mode: &'a str,
}

/// Adds every job `plan` requires for `spec.name` to `dag`.
pub fn add_benchmark_jobs(
    dag: &mut JobDag,
    spec: BenchJobs<'_>,
    plan: &StagePlan,
) -> Result<(), String> {
    let BenchJobs {
        name,
        scale,
        params,
        energy,
        suite,
        mode,
    } = spec;
    let bench = lookup(name)?;
    let region = bench.region();
    let ir_text = region.program().to_string();
    let core_cfg_json = serde::json::to_string(&CoreConfig::penryn_like());
    let name_owned = name.to_string();

    // ---- observe ----------------------------------------------------
    let observe_key = {
        let mut h = base_hasher("observe");
        h.update_str(name);
        h.update_str(&ir_text);
        h.update_json(&scale);
        // Dataset digest: the exact training inputs, bit for bit.
        let training = bench.training_inputs(&scale);
        h.update_u64(training.len() as u64);
        for row in &training {
            h.update_f32s(row);
        }
        h.digest()
    };
    let observe_id = if plan.train {
        let job_name = name_owned.clone();
        Some(dag.add(
            "observe",
            name,
            Some(observe_key.clone()),
            vec![],
            Box::new(move |_| {
                let bench = lookup(&job_name)?;
                let region = bench.region();
                region
                    .verify()
                    .map_err(|e| format!("{job_name}: region rejected: {e}"))?;
                let training = bench.training_inputs(&scale);
                let obs = parrot::observe(&region, &training)
                    .map_err(|e| format!("{job_name}: observation failed: {e}"))?;
                Ok(Artifact::Observe(obs))
            }),
        ))
    } else {
        None
    };

    // ---- train ------------------------------------------------------
    let train_key = {
        let mut h = base_hasher("train");
        h.update_str(&observe_key);
        h.update_json(&canonical_search(&params));
        h.update_u64(params.max_training_samples as u64);
        h.update_json(&params.npu);
        h.digest()
    };
    let train_id = observe_id.map(|obs_id| {
        let job_name = name_owned.clone();
        let params = Arc::clone(&params);
        dag.add(
            "train",
            name,
            Some(train_key.clone()),
            vec![obs_id],
            Box::new(move |deps| {
                let obs = deps[0].as_observe()?;
                let data = obs.normalized().subsample(
                    params.max_training_samples,
                    parrot::subsample_seed(params.search.seed),
                );
                let npu_params = params.npu.clone();
                let cost = |t: &ann::Topology| npu::try_estimate_latency(t, &npu_params).ok();
                let outcome = ann::TopologySearch::new(params.search.clone())
                    .run(&data, &cost)
                    .map_err(|e| format!("{job_name}: training failed: {e}"))?;
                Ok(Artifact::Train(TrainArtifact {
                    outcome,
                    input_norm: obs.input_norm.clone(),
                    output_norm: obs.output_norm.clone(),
                }))
            }),
        )
    });

    // ---- functional outputs (Table 1, Figure 6, report) -------------
    let outputs_base_key = {
        let mut h = base_hasher("outputs_base");
        h.update_str(name);
        h.update_str(&ir_text);
        h.update_json(&scale);
        h.digest()
    };
    let outputs_npu_key = {
        let mut h = base_hasher("outputs_npu");
        h.update_str(&train_key);
        h.update_json(&scale);
        h.digest()
    };
    let (outputs_base_id, outputs_npu_id) = if plan.outputs {
        let job_name = name_owned.clone();
        let base_id = dag.add(
            "outputs_base",
            name,
            Some(outputs_base_key.clone()),
            vec![],
            Box::new(move |_| {
                let bench = lookup(&job_name)?;
                Ok(Artifact::Outputs(runner::baseline_outputs(
                    bench.as_ref(),
                    &scale,
                )))
            }),
        );

        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        let npu_id = dag.add(
            "outputs_npu",
            name,
            Some(outputs_npu_key.clone()),
            vec![train_id.expect("outputs_npu requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                let variant = AppVariant::Npu(&compiled);
                let app = bench.build_app(&variant, &scale);
                let run = runner::run_functional(&app, &variant)
                    .map_err(|e| format!("{job_name}: npu run failed: {e}"))?;
                Ok(Artifact::Outputs(
                    bench.extract_outputs(&run.memory, &scale),
                ))
            }),
        );
        (Some(base_id), Some(npu_id))
    } else {
        (None, None)
    };

    // ---- instruction counts (Figure 7) ------------------------------
    if plan.counts {
        let key = {
            let mut h = base_hasher("counts_base");
            h.update_str(name);
            h.update_str(&ir_text);
            h.update_json(&scale);
            h.digest()
        };
        let job_name = name_owned.clone();
        dag.add(
            "counts_base",
            name,
            Some(key),
            vec![],
            Box::new(move |_| {
                let bench = lookup(&job_name)?;
                let app = bench.build_app(&AppVariant::Precise, &scale);
                let (_, counts) = runner::run_counting(&app, &AppVariant::Precise)
                    .map_err(|e| format!("{job_name}: counting run failed: {e}"))?;
                Ok(Artifact::Counts(CountsArtifact {
                    total: counts.total,
                    npu_queue: counts.npu_queue,
                }))
            }),
        );

        let key = {
            let mut h = base_hasher("counts_npu");
            h.update_str(&train_key);
            h.update_json(&scale);
            h.digest()
        };
        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        dag.add(
            "counts_npu",
            name,
            Some(key),
            vec![train_id.expect("counts_npu requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                let variant = AppVariant::Npu(&compiled);
                let app = bench.build_app(&variant, &scale);
                let (_, counts) = runner::run_counting(&app, &variant)
                    .map_err(|e| format!("{job_name}: counting run failed: {e}"))?;
                Ok(Artifact::Counts(CountsArtifact {
                    total: counts.total,
                    npu_queue: counts.npu_queue,
                }))
            }),
        );
    }

    // ---- cycle-level timing -----------------------------------------
    let sim_cpu_key = {
        let mut h = base_hasher("sim_cpu");
        h.update_str(name);
        h.update_str(&ir_text);
        h.update_json(&scale);
        h.update_str(&core_cfg_json);
        h.digest()
    };
    let sim_cpu_id = if plan.sim_cpu {
        let job_name = name_owned.clone();
        Some(dag.add(
            "sim_cpu",
            name,
            Some(sim_cpu_key.clone()),
            vec![],
            Box::new(move |_| {
                let bench = lookup(&job_name)?;
                timed(
                    bench.as_ref(),
                    &AppVariant::Precise,
                    &scale,
                    CoreConfig::penryn_like(),
                )
                .map(Artifact::Timing)
                .map_err(|e| format!("{job_name}: {e}"))
            }),
        ))
    } else {
        None
    };

    let sim_npu_key = {
        let mut h = base_hasher("sim_npu");
        h.update_str(&train_key);
        h.update_json(&scale);
        h.update_str(&core_cfg_json);
        h.digest()
    };
    let sim_npu_id = if plan.sim_npu {
        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        Some(dag.add(
            "sim_npu",
            name,
            Some(sim_npu_key.clone()),
            vec![train_id.expect("sim_npu requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                timed(
                    bench.as_ref(),
                    &AppVariant::Npu(&compiled),
                    &scale,
                    CoreConfig::penryn_like(),
                )
                .map(Artifact::Timing)
                .map_err(|e| format!("{job_name}: {e}"))
            }),
        ))
    } else {
        None
    };

    let sim_ideal_key = {
        let mut h = base_hasher("sim_ideal");
        h.update_str(&train_key);
        h.update_json(&scale);
        h.update_str(&core_cfg_json);
        h.digest()
    };
    let sim_ideal_id = if plan.sim_ideal {
        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        Some(dag.add(
            "sim_ideal",
            name,
            Some(sim_ideal_key.clone()),
            vec![train_id.expect("sim_ideal requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                let variant = AppVariant::Npu(&compiled);
                let app = bench.build_app(&variant, &scale);
                let t = compiled.config().topology();
                let (_, stats) = runner::run_timed_ideal(
                    &app,
                    &variant,
                    CoreConfig::penryn_like(),
                    t.inputs(),
                    t.outputs(),
                )
                .map_err(|e| format!("{job_name}: ideal run failed: {e}"))?;
                Ok(Artifact::Timing(timing_artifact(stats, None)))
            }),
        ))
    } else {
        None
    };

    if plan.sim_soft {
        let key = {
            let mut h = base_hasher("sim_soft");
            h.update_str(&train_key);
            h.update_json(&scale);
            h.update_str(&core_cfg_json);
            h.digest()
        };
        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        dag.add(
            "sim_soft",
            name,
            Some(key),
            vec![train_id.expect("sim_soft requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                timed(
                    bench.as_ref(),
                    &AppVariant::SoftwareNn(&compiled),
                    &scale,
                    CoreConfig::penryn_like(),
                )
                .map(Artifact::Timing)
                .map_err(|e| format!("{job_name}: {e}"))
            }),
        );
    }

    for &lat in &plan.link_latencies {
        let stage = format!("sim_link_{lat}");
        let key = {
            let mut h = base_hasher(&stage);
            h.update_str(&train_key);
            h.update_json(&scale);
            h.update_u64(lat);
            h.digest()
        };
        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        dag.add(
            stage,
            name,
            Some(key),
            vec![train_id.expect("sim_link requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                timed(
                    bench.as_ref(),
                    &AppVariant::Npu(&compiled),
                    &scale,
                    CoreConfig::with_npu_link_latency(lat),
                )
                .map(Artifact::Timing)
                .map_err(|e| format!("{job_name}: {e}"))
            }),
        );
    }

    for &pes in &plan.pe_counts {
        let stage = format!("sim_pes_{pes}");
        let sweep_params = npu::NpuParams::with_pes(pes).unbounded();
        let key = {
            let mut h = base_hasher(&stage);
            h.update_str(&train_key);
            h.update_json(&scale);
            h.update_json(&sweep_params);
            h.digest()
        };
        let job_name = name_owned.clone();
        let job_params = Arc::clone(&params);
        dag.add(
            stage,
            name,
            Some(key),
            vec![train_id.expect("sim_pes requires train")],
            Box::new(move |deps| {
                let (bench, compiled) = assemble(&job_name, deps[0].as_train()?, &job_params)?;
                let variant = AppVariant::Npu(&compiled);
                let app = bench.build_app(&variant, &scale);
                let sim = compiled
                    .make_npu_with(&sweep_params)
                    .map_err(|e| format!("{job_name}: npu sizing failed: {e}"))?;
                let (_, stats, npu) =
                    runner::run_timed_with_npu(&app, &variant, CoreConfig::penryn_like(), sim)
                        .map_err(|e| format!("{job_name}: pe sweep run failed: {e}"))?;
                Ok(Artifact::Timing(timing_artifact(stats, npu)))
            }),
        );
    }

    // ---- energy (Figure 8b) -----------------------------------------
    if plan.energy {
        let key = {
            let mut h = base_hasher("energy");
            h.update_str(&sim_cpu_key);
            h.update_str(&sim_npu_key);
            h.update_str(&sim_ideal_key);
            h.update_json(&energy);
            h.digest()
        };
        dag.add(
            "energy",
            name,
            Some(key),
            vec![
                sim_cpu_id.expect("energy requires sim_cpu"),
                sim_npu_id.expect("energy requires sim_npu"),
                sim_ideal_id.expect("energy requires sim_ideal"),
            ],
            Box::new(move |deps| {
                let base = deps[0].as_timing()?;
                let with_npu = deps[1].as_timing()?;
                let ideal = deps[2].as_timing()?;
                let model = EnergyModel::new(energy);
                Ok(Artifact::Energy(EnergyArtifact {
                    baseline_pj: model.core_energy(&base.stats).total_pj(),
                    npu_pj: model
                        .system_energy(&with_npu.stats, with_npu.npu.as_ref())
                        .total_pj(),
                    ideal_pj: model.core_energy(&ideal.stats).total_pj(),
                }))
            }),
        );
    }

    // ---- per-benchmark run report -----------------------------------
    if plan.report {
        let key = {
            let mut h = base_hasher("report");
            h.update_str(suite);
            h.update_str(mode);
            h.update_str(&train_key);
            h.update_str(&sim_cpu_key);
            h.update_str(&sim_npu_key);
            h.update_str(&outputs_base_key);
            h.update_str(&outputs_npu_key);
            h.digest()
        };
        let job_name = name_owned.clone();
        let (suite, mode) = (suite.to_string(), mode.to_string());
        dag.add(
            "report",
            name,
            Some(key),
            vec![
                train_id.expect("report requires train"),
                sim_cpu_id.expect("report requires sim_cpu"),
                sim_npu_id.expect("report requires sim_npu"),
                outputs_base_id.expect("report requires outputs_base"),
                outputs_npu_id.expect("report requires outputs_npu"),
            ],
            Box::new(move |deps| {
                let train = deps[0].as_train()?;
                let base = deps[1].as_timing()?;
                let with_npu = deps[2].as_timing()?;
                let out_base = deps[3].as_outputs()?;
                let out_npu = deps[4].as_outputs()?;
                let bench = lookup(&job_name)?;
                let region = bench.region();
                let verify = region
                    .verify()
                    .map_err(|e| format!("{job_name}: region rejected: {e}"))?;

                // Deterministic by construction: no wall-clock, no phase
                // timings, a zeroed scheduler section. Anything timing-
                // dependent lives in the sweep-level report instead, so
                // this report is byte-identical across `--jobs` settings
                // and across warm/cold runs.
                let mut report = telemetry::RunReport::new(&suite, &job_name, &mode);
                let mut lint = telemetry::LintSummary::default();
                for d in verify.diagnostics() {
                    lint.record(&d.severity.to_string(), d.lint.name());
                }
                lint.export(&mut report.metrics, "lint");
                report.lint = lint;
                // Both derive from the region's static IR alone, so they
                // are as deterministic as the lint section.
                report.precision = region.precision_summary();
                if let Some(bits) = report.precision.datapath_int_bits {
                    report
                        .metrics
                        .add("precision.datapath_int_bits", bits as u64);
                }
                if let Some(bits) = report.precision.datapath_frac_bits {
                    report
                        .metrics
                        .add("precision.datapath_frac_bits", bits as u64);
                }
                base.stats.export(&mut report.metrics, "uarch.baseline");
                with_npu.stats.export(&mut report.metrics, "uarch.npu");
                if let Some(unit) = &with_npu.npu {
                    unit.export(&mut report.metrics, "npu");
                }
                train
                    .outcome
                    .export_metrics(&mut report.metrics, "ann.search");
                if with_npu.stats.cycles > 0 {
                    report.metrics.set_gauge(
                        "speedup",
                        base.stats.cycles as f64 / with_npu.stats.cycles as f64,
                    );
                }
                // Distributions: both are functions of the simulated trace
                // and the functional outputs — deterministic, so safe in
                // this bit-identical-across-`--jobs` report.
                if let Some(hist) = &with_npu.npu_invocation_cycles {
                    report.push_distribution("npu.invocation_cycles", hist);
                }
                let mut err = telemetry::Histogram::default();
                for e in bench.element_errors(out_base, out_npu) {
                    err.observe(e);
                }
                report.push_distribution("region.output_error", &err);
                Ok(Artifact::Report(report))
            }),
        );
    }

    Ok(())
}

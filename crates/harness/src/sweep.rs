//! Sweep assembly: which experiments to run, over which benchmarks, and
//! the collected result.
//!
//! A [`SweepSpec`] is declarative — experiments, benchmarks, scale,
//! compile parameters, root seed, worker count, cache directory.
//! [`run_sweep`] expands it into one [`crate::dag::JobDag`], executes it
//! on the work-stealing pool, and folds the per-job results into a
//! [`SweepResult`] the presentation layer (row builders, report writers)
//! consumes.

use crate::artifact::Artifact;
use crate::cache::ArtifactCache;
use crate::dag::JobDag;
use crate::exec::{self, ExecStats, JobResult};
use crate::pipeline;
use benchmarks::{all_benchmarks, benchmark_by_name, Scale};
use energy::EnergyParams;
use parrot::{CompileParams, CompiledRegion};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use telemetry::{RunReport, SchedulerSummary};

/// Root seed every per-benchmark, per-purpose seed is derived from when
/// the caller does not override it (the ann crate's historical default).
pub const DEFAULT_ROOT_SEED: u64 = 0xdead_beef;

/// NPU link-latency sweep points (Figure 10).
pub const DEFAULT_LINK_LATENCIES: &[u64] = &[1, 2, 4, 8, 16];

/// PE-count sweep points (Figure 11).
pub const DEFAULT_PE_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32];

/// One experiment the harness knows how to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1: per-benchmark application error.
    Table1,
    /// Figure 6: CDF of per-element error.
    Fig6,
    /// Figure 7: dynamic instruction subsumption.
    Fig7,
    /// Figure 8: whole-application speedup and energy reduction.
    Fig8,
    /// Figure 9: software-NN slowdown (why hardware is needed).
    Fig9,
    /// Figure 10: sensitivity to core–NPU link latency.
    Fig10,
    /// Figure 11: sensitivity to the number of PEs.
    Fig11,
    /// Per-benchmark machine-readable run reports.
    Report,
    /// Train only (compile artifacts for ablation studies).
    Train,
}

impl Experiment {
    /// Every paper experiment plus reports (what `run_all` runs). `Train`
    /// is excluded: it is subsumed by anything that needs a network.
    pub fn all() -> Vec<Experiment> {
        vec![
            Experiment::Table1,
            Experiment::Fig6,
            Experiment::Fig7,
            Experiment::Fig8,
            Experiment::Fig9,
            Experiment::Fig10,
            Experiment::Fig11,
            Experiment::Report,
        ]
    }

    /// Parses a CLI experiment name (`table1`, `fig8`/`fig08`, `report`,
    /// `train`).
    pub fn parse(s: &str) -> Option<Experiment> {
        match s.to_ascii_lowercase().as_str() {
            "table1" => Some(Experiment::Table1),
            "fig6" | "fig06" => Some(Experiment::Fig6),
            "fig7" | "fig07" => Some(Experiment::Fig7),
            "fig8" | "fig08" => Some(Experiment::Fig8),
            "fig9" | "fig09" => Some(Experiment::Fig9),
            "fig10" => Some(Experiment::Fig10),
            "fig11" => Some(Experiment::Fig11),
            "report" => Some(Experiment::Report),
            "train" => Some(Experiment::Train),
            _ => None,
        }
    }

    /// Canonical name (inverse of [`Experiment::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Report => "report",
            Experiment::Train => "train",
        }
    }
}

/// Which pipeline stages a set of experiments requires.
#[derive(Debug, Clone, Default)]
pub struct StagePlan {
    /// `observe` + `train` (any experiment that needs a network).
    pub train: bool,
    /// Functional output runs (Table 1, Figure 6, and the report's
    /// output-error distribution).
    pub outputs: bool,
    /// Instruction-counting runs (Figure 7).
    pub counts: bool,
    /// Baseline cycle-level run.
    pub sim_cpu: bool,
    /// NPU cycle-level run.
    pub sim_npu: bool,
    /// Ideal-NPU cycle-level run (Figure 8's upper bound).
    pub sim_ideal: bool,
    /// Software-NN cycle-level run (Figure 9).
    pub sim_soft: bool,
    /// Energy model evaluation (Figure 8b).
    pub energy: bool,
    /// Per-benchmark run reports.
    pub report: bool,
    /// Link-latency sweep points, empty unless Figure 10 is requested.
    pub link_latencies: Vec<u64>,
    /// PE-count sweep points, empty unless Figure 11 is requested.
    pub pe_counts: Vec<usize>,
}

impl StagePlan {
    /// Derives the stage set for `experiments` (sweep points are taken
    /// from `link_latencies` / `pe_counts` when the matching figure is
    /// requested).
    pub fn from_experiments(
        experiments: &[Experiment],
        link_latencies: &[u64],
        pe_counts: &[usize],
    ) -> StagePlan {
        let has = |e: Experiment| experiments.contains(&e);
        let mut plan = StagePlan {
            outputs: has(Experiment::Table1) || has(Experiment::Fig6) || has(Experiment::Report),
            counts: has(Experiment::Fig7),
            sim_cpu: has(Experiment::Fig8)
                || has(Experiment::Fig9)
                || has(Experiment::Fig10)
                || has(Experiment::Fig11)
                || has(Experiment::Report),
            sim_npu: has(Experiment::Fig8) || has(Experiment::Report),
            sim_ideal: has(Experiment::Fig8),
            sim_soft: has(Experiment::Fig9),
            energy: has(Experiment::Fig8),
            report: has(Experiment::Report),
            link_latencies: if has(Experiment::Fig10) {
                link_latencies.to_vec()
            } else {
                Vec::new()
            },
            pe_counts: if has(Experiment::Fig11) {
                pe_counts.to_vec()
            } else {
                Vec::new()
            },
            train: false,
        };
        plan.train = has(Experiment::Train)
            || plan.outputs
            || plan.counts
            || plan.sim_npu
            || plan.sim_ideal
            || plan.sim_soft
            || plan.report
            || !plan.link_latencies.is_empty()
            || !plan.pe_counts.is_empty();
        plan
    }
}

/// Declarative description of one sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Suite name stamped into reports (e.g. `parrot-run`).
    pub suite: String,
    /// Run mode stamped into reports (`fast` or `paper`).
    pub mode: String,
    /// Input scale for every benchmark.
    pub scale: Scale,
    /// Compilation parameters; the per-benchmark search seed is derived
    /// from [`SweepSpec::root_seed`], overriding `compile.search.seed`.
    pub compile: CompileParams,
    /// Root seed all per-benchmark seeds derive from.
    pub root_seed: u64,
    /// Worker threads (`0` = one per available core).
    pub jobs: usize,
    /// Counter-sampling interval in microseconds (`None` disables the
    /// sampler thread; queue depth, cache traffic, and the trace-buffer
    /// high-water mark are then absent from traces).
    pub sample_interval_us: Option<u64>,
    /// Artifact-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Benchmarks to run (empty = all, in canonical order).
    pub benches: Vec<String>,
    /// Experiments to schedule.
    pub experiments: Vec<Experiment>,
    /// Figure 10 sweep points.
    pub link_latencies: Vec<u64>,
    /// Figure 11 sweep points.
    pub pe_counts: Vec<usize>,
    /// Energy-model parameters (Figure 8b).
    pub energy: EnergyParams,
}

impl SweepSpec {
    /// A spec with every experiment, all benchmarks, default seeds and
    /// sweep points, no cache, and one worker per core.
    pub fn new(suite: &str, mode: &str, scale: Scale, compile: CompileParams) -> SweepSpec {
        SweepSpec {
            suite: suite.to_string(),
            mode: mode.to_string(),
            scale,
            compile,
            root_seed: DEFAULT_ROOT_SEED,
            jobs: 0,
            sample_interval_us: None,
            cache_dir: None,
            benches: Vec::new(),
            experiments: Experiment::all(),
            link_latencies: DEFAULT_LINK_LATENCIES.to_vec(),
            pe_counts: DEFAULT_PE_COUNTS.to_vec(),
            energy: EnergyParams::default(),
        }
    }
}

/// One failed job.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Benchmark the job belonged to.
    pub bench: String,
    /// Pipeline stage that failed.
    pub stage: String,
    /// The body's error message.
    pub error: String,
}

/// Everything a sweep produced.
#[derive(Debug)]
pub struct SweepResult {
    /// Benchmarks the sweep covered, in run order.
    pub benches: Vec<String>,
    /// NPU sizing the sweep compiled for (needed to reassemble compiled
    /// regions from train artifacts).
    pub npu_params: npu::NpuParams,
    /// Failed jobs, in DAG order.
    pub failures: Vec<JobFailure>,
    /// `(bench, stage)` of jobs skipped because an upstream failed.
    pub skipped: Vec<(String, String)>,
    /// Scheduler and cache accounting for the whole sweep.
    pub scheduler: SchedulerSummary,
    /// Per-stage job-duration distributions in microseconds.
    pub stage_job_us: BTreeMap<String, telemetry::Histogram>,
    /// Wall-clock sample distributions drained from the global registry
    /// (`ann.train.epoch_us`, `harness.cache.lookup_us`, …) — timing-
    /// dependent, so they surface only in the sweep-level report.
    pub samples: telemetry::MetricsRegistry,
    artifacts: BTreeMap<(String, String), Arc<Artifact>>,
}

impl SweepResult {
    /// The artifact `bench`'s `stage` job produced, if it succeeded.
    pub fn artifact(&self, bench: &str, stage: &str) -> Option<&Artifact> {
        self.artifacts
            .get(&(bench.to_string(), stage.to_string()))
            .map(Arc::as_ref)
    }

    /// Whether every job succeeded.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Per-benchmark run reports, in benchmark order (only benchmarks
    /// whose report job succeeded).
    pub fn reports(&self) -> Vec<&RunReport> {
        self.benches
            .iter()
            .filter_map(|b| self.artifact(b, "report"))
            .filter_map(|a| a.as_report().ok())
            .collect()
    }

    /// Reassembles `bench`'s compiled region from its train artifact
    /// (used by the ablation studies, which replay compiled regions under
    /// modified conditions).
    ///
    /// # Errors
    ///
    /// Fails when the train job did not succeed or reassembly fails.
    pub fn compiled(&self, bench: &str) -> Result<CompiledRegion, String> {
        let train = self
            .artifact(bench, "train")
            .ok_or_else(|| format!("{bench}: no train artifact in sweep"))?
            .as_train()?;
        let b = benchmark_by_name(bench).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
        CompiledRegion::assemble(
            &b.region(),
            train.outcome.clone(),
            train.input_norm.clone(),
            train.output_norm.clone(),
            self.npu_params.clone(),
        )
        .map_err(|e| format!("{bench}: assemble failed: {e}"))
    }

    /// A one-line-per-failure human summary (empty string when clean).
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            out.push_str(&format!("  {}/{}: {}\n", f.bench, f.stage, f.error));
        }
        for (bench, stage) in &self.skipped {
            out.push_str(&format!("  {bench}/{stage}: skipped (upstream failed)\n"));
        }
        out
    }

    /// The sweep-level report: benchmark `"sweep"`, real wall clock, and
    /// the scheduler/cache section filled in (this is where the
    /// timing-dependent numbers live; per-benchmark reports stay
    /// deterministic).
    pub fn sweep_report(&self, suite: &str, mode: &str) -> RunReport {
        let mut report = RunReport::new(suite, "sweep", mode);
        report.wall_clock_us = self.scheduler.wall_clock_us;
        report.scheduler = self.scheduler.clone();
        self.scheduler.export(&mut report.metrics, "scheduler");
        for (stage, hist) in &self.stage_job_us {
            report.push_distribution(&format!("sched.job_us.{stage}"), hist);
        }
        for (name, hist) in self.samples.histograms() {
            report.push_distribution(name, hist);
        }
        report
    }
}

fn scheduler_summary(
    stats: &ExecStats,
    cache: Option<&ArtifactCache>,
    jobs_total: usize,
) -> SchedulerSummary {
    let (cache_hits, cache_misses, cache_writes) =
        cache.map(|c| c.stats().snapshot()).unwrap_or((0, 0, 0));
    SchedulerSummary {
        workers: stats.workers as u64,
        jobs_total: jobs_total as u64,
        jobs_executed: stats.executed,
        jobs_from_cache: stats.from_cache,
        jobs_failed: stats.failed,
        jobs_skipped: stats.skipped,
        cache_hits,
        cache_misses,
        cache_writes,
        max_queue_depth: stats.max_queue_depth,
        wall_clock_us: stats.wall_clock_us,
        stage_wall_us: stats.stage_wall_us.clone(),
    }
}

/// Expands `spec` into a job DAG and executes it.
///
/// Failures of individual jobs do *not* fail the sweep — they are
/// collected in [`SweepResult::failures`] so one broken benchmark cannot
/// hide the others' results. Only malformed specs (unknown benchmark
/// names) error out up front.
///
/// # Errors
///
/// Fails when `spec.benches` names an unknown benchmark.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, String> {
    let _span = telemetry::span("harness::sweep", &spec.suite);

    let benches: Vec<String> = if spec.benches.is_empty() {
        all_benchmarks()
            .iter()
            .map(|b| b.name().to_string())
            .collect()
    } else {
        for name in &spec.benches {
            benchmark_by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
        }
        spec.benches.clone()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if spec.jobs == 0 { cores } else { spec.jobs };
    let plan =
        StagePlan::from_experiments(&spec.experiments, &spec.link_latencies, &spec.pe_counts);

    let mut dag = JobDag::new();
    for name in &benches {
        let mut params = spec.compile.clone();
        // Root-seed derivation: each benchmark's topology search gets an
        // independent stream, so adding or removing benchmarks from a
        // sweep never shifts another benchmark's randomness.
        params.search.seed = ann::seed::mix_str(spec.root_seed, &format!("search/{name}"));
        // Training parallelism nests inside job parallelism: keep the
        // total thread count near the core count.
        params.search.threads = (cores / workers).max(1);
        pipeline::add_benchmark_jobs(
            &mut dag,
            pipeline::BenchJobs {
                name,
                scale: spec.scale,
                params: Arc::new(params),
                energy: spec.energy,
                suite: &spec.suite,
                mode: &spec.mode,
            },
            &plan,
        )?;
    }

    let cache = spec.cache_dir.as_ref().map(ArtifactCache::new);
    // Drain stale wall-clock samples (an earlier sweep in this process)
    // so this sweep's report only carries its own distributions.
    let _ = telemetry::take_samples();
    let opts = exec::ExecOptions {
        workers,
        sample_interval: spec
            .sample_interval_us
            .map(std::time::Duration::from_micros),
    };
    let (results, stats) = exec::execute_opts(&dag, cache.as_ref(), &opts);

    let mut artifacts = BTreeMap::new();
    let mut failures = Vec::new();
    let mut skipped = Vec::new();
    for (job, result) in dag.jobs().iter().zip(&results) {
        match result {
            JobResult::Done { artifact, .. } => {
                artifacts.insert((job.bench.clone(), job.stage.clone()), Arc::clone(artifact));
            }
            JobResult::Failed(error) => failures.push(JobFailure {
                bench: job.bench.clone(),
                stage: job.stage.clone(),
                error: error.clone(),
            }),
            JobResult::Skipped => skipped.push((job.bench.clone(), job.stage.clone())),
        }
    }

    let scheduler = scheduler_summary(&stats, cache.as_ref(), dag.len());
    Ok(SweepResult {
        benches,
        npu_params: spec.compile.npu.clone(),
        failures,
        skipped,
        scheduler,
        stage_job_us: stats.stage_job_us,
        samples: telemetry::take_samples(),
        artifacts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_plan_covers_each_experiment() {
        let plan = StagePlan::from_experiments(&[Experiment::Table1], &[1], &[2]);
        assert!(plan.train && plan.outputs);
        assert!(!plan.sim_cpu && !plan.counts && plan.link_latencies.is_empty());

        let plan = StagePlan::from_experiments(&[Experiment::Fig8], &[1], &[2]);
        assert!(plan.train && plan.sim_cpu && plan.sim_npu && plan.sim_ideal && plan.energy);

        let plan = StagePlan::from_experiments(&[Experiment::Fig10], &[1, 4], &[2]);
        assert_eq!(plan.link_latencies, vec![1, 4]);
        assert!(plan.sim_cpu && plan.train && plan.pe_counts.is_empty());

        let plan = StagePlan::from_experiments(&[Experiment::Train], &[], &[]);
        assert!(plan.train && !plan.sim_cpu && !plan.outputs && !plan.report);

        let plan = StagePlan::from_experiments(&[Experiment::Fig7], &[], &[]);
        assert!(plan.counts && plan.train && !plan.outputs);
    }

    #[test]
    fn experiment_names_round_trip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::parse(e.name()), Some(e));
        }
        assert_eq!(Experiment::parse("fig08"), Some(Experiment::Fig8));
        assert_eq!(Experiment::parse("nope"), None);
    }
}

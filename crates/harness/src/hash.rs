//! Content hashing for cache keys: a 128-bit digest built from two
//! independent 64-bit FNV-1a streams.
//!
//! Cache keys only need collision resistance against *accidental*
//! collisions among a few thousand artifacts, not adversaries; two FNV
//! streams with different offset bases give 128 bits of well-mixed state
//! with no dependencies. Keys are rendered as 32 lowercase hex digits and
//! used as file names under the cache directory.

use std::fmt::Write as _;

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental content hasher producing a 128-bit hex digest.
///
/// Every `update_*` call also mixes in a length/tag byte sequence, so
/// `update_str("ab"); update_str("c")` and `update_str("abc")` produce
/// different digests (no concatenation ambiguity between fields).
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    /// A fresh hasher, domain-separated by `tag` (typically the stage
    /// name) so equal payloads hashed for different purposes never
    /// collide.
    pub fn new(tag: &str) -> KeyHasher {
        let mut h = KeyHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        };
        h.update_str(tag);
        h
    }

    fn update_bytes_raw(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            // The second stream sees each byte rotated so the two streams
            // stay decorrelated even on repetitive input.
            self.b = (self.b ^ u64::from(byte.rotate_left(3))).wrapping_mul(FNV_PRIME);
            self.b = self.b.rotate_left(1);
        }
    }

    /// Mixes in a length-prefixed byte string.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        self.update_bytes_raw(&(bytes.len() as u64).to_le_bytes());
        self.update_bytes_raw(bytes);
    }

    /// Mixes in a length-prefixed UTF-8 string.
    pub fn update_str(&mut self, s: &str) {
        self.update_bytes(s.as_bytes());
    }

    /// Mixes in an unsigned integer.
    pub fn update_u64(&mut self, v: u64) {
        self.update_bytes_raw(&v.to_le_bytes());
    }

    /// Mixes in a float's exact bit pattern (no text round-trip).
    pub fn update_f32(&mut self, v: f32) {
        self.update_bytes_raw(&v.to_bits().to_le_bytes());
    }

    /// Mixes in a whole `f32` slice (length-prefixed).
    pub fn update_f32s(&mut self, vs: &[f32]) {
        self.update_u64(vs.len() as u64);
        for &v in vs {
            self.update_f32(v);
        }
    }

    /// Mixes in any serializable value via its canonical JSON rendering.
    pub fn update_json<T: serde::Serialize>(&mut self, value: &T) {
        self.update_str(&serde::json::to_string(value));
    }

    /// The 32-hex-digit digest.
    pub fn digest(&self) -> String {
        let mut out = String::with_capacity(32);
        let _ = write!(out, "{:016x}{:016x}", self.a, self.b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_hex() {
        let mut h = KeyHasher::new("observe");
        h.update_str("sobel");
        h.update_u64(42);
        let d = h.digest();
        assert_eq!(d.len(), 32);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
        // Same inputs, same digest.
        let mut h2 = KeyHasher::new("observe");
        h2.update_str("sobel");
        h2.update_u64(42);
        assert_eq!(d, h2.digest());
    }

    #[test]
    fn tag_and_field_boundaries_matter() {
        let mut a = KeyHasher::new("observe");
        a.update_str("sobel");
        let mut b = KeyHasher::new("train");
        b.update_str("sobel");
        assert_ne!(a.digest(), b.digest(), "stage tag must separate domains");

        let mut c = KeyHasher::new("t");
        c.update_str("ab");
        c.update_str("c");
        let mut d = KeyHasher::new("t");
        d.update_str("a");
        d.update_str("bc");
        assert_ne!(c.digest(), d.digest(), "field boundaries must be hashed");
    }

    #[test]
    fn float_bits_are_hashed_exactly() {
        let mut a = KeyHasher::new("t");
        a.update_f32s(&[0.1, -0.0]);
        let mut b = KeyHasher::new("t");
        b.update_f32s(&[0.1, 0.0]);
        assert_ne!(a.digest(), b.digest(), "-0.0 and 0.0 differ in bits");
    }

    #[test]
    fn json_update_covers_nested_values() {
        #[derive(serde::Serialize)]
        struct P {
            x: u32,
            label: String,
        }
        let mut a = KeyHasher::new("t");
        a.update_json(&P {
            x: 1,
            label: "q".into(),
        });
        let mut b = KeyHasher::new("t");
        b.update_json(&P {
            x: 2,
            label: "q".into(),
        });
        assert_ne!(a.digest(), b.digest());
    }
}

//! The work-stealing executor.
//!
//! Workers each own a local deque of ready jobs; a job finishing pushes
//! its newly-unblocked dependents onto the finishing worker's deque
//! (keeping a benchmark's pipeline hot on one worker), idle workers pull
//! from a shared injector first and then steal from the busiest peer.
//! Because every job body is a pure function of its dependencies'
//! artifacts, execution order and worker count cannot change any result —
//! only the wall clock.
//!
//! Cache interaction is centralized here: before running a body the
//! executor consults the [`ArtifactCache`] under the job's `(stage, key)`
//! and skips execution on a hit; after a successful run it stores the
//! artifact back. Failures propagate: dependents of a failed job are
//! marked skipped without running.
//!
//! Tracing: the submitting thread captures one [`telemetry::Handoff`]
//! per job inside the sweep-level span, and the worker adopts it before
//! opening the job's own span — so every worker-side span is parented to
//! the sweep span that enqueued it (with a flow arrow in Perfetto), no
//! matter which thread runs the job. Each terminal state also emits a
//! [`telemetry::EventKind::JobDone`] instant carrying the DAG edge list,
//! which is what `parrot-trace` replays to recover the critical path.

use crate::artifact::Artifact;
use crate::cache::ArtifactCache;
use crate::dag::{JobDag, JobId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Terminal state of one job.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// The job produced (or loaded) its artifact.
    Done {
        /// The artifact.
        artifact: Arc<Artifact>,
        /// Whether it came from the cache instead of running the body.
        from_cache: bool,
    },
    /// The body returned an error.
    Failed(String),
    /// An upstream dependency failed, so the body never ran.
    Skipped,
}

/// Aggregate counters from one executor run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs whose body ran.
    pub executed: u64,
    /// Jobs served from the cache.
    pub from_cache: u64,
    /// Jobs whose body failed.
    pub failed: u64,
    /// Jobs skipped due to upstream failure.
    pub skipped: u64,
    /// High-water mark of simultaneously-ready jobs.
    pub max_queue_depth: u64,
    /// Wall clock of the whole run, microseconds.
    pub wall_clock_us: u64,
    /// Per-stage wall clock, microseconds, summed over jobs (cache hits
    /// contribute their load time).
    pub stage_wall_us: BTreeMap<String, u64>,
    /// Per-stage job-duration distributions in microseconds (same
    /// samples the `stage_wall_us` sums are built from).
    pub stage_job_us: BTreeMap<String, telemetry::Histogram>,
}

/// Execution knobs beyond the DAG itself.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker threads (clamped to at least 1 and at most the job count).
    pub workers: usize,
    /// When set, a sampler thread emits [`telemetry::EventKind::CounterSample`]
    /// events (queue depth, cache traffic, trace-buffer high-water mark)
    /// at this interval for the duration of the run.
    pub sample_interval: Option<Duration>,
}

struct Shared<'d> {
    dag: &'d JobDag,
    cache: Option<&'d ArtifactCache>,
    /// One handoff token per job, captured on the submitting thread so
    /// worker-side job spans parent to the sweep-level span.
    handoffs: Vec<telemetry::Handoff>,
    results: Vec<Mutex<Option<JobResult>>>,
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<JobId>>,
    remaining: AtomicUsize,
    injector: Mutex<VecDeque<JobId>>,
    locals: Vec<Mutex<VecDeque<JobId>>>,
    ready: AtomicUsize,
    max_ready: AtomicUsize,
    executed: AtomicU64,
    from_cache: AtomicU64,
    failed: AtomicU64,
    skipped: AtomicU64,
    stage_wall: Mutex<BTreeMap<String, u64>>,
    stage_hist: Mutex<BTreeMap<String, telemetry::Histogram>>,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared<'_> {
    fn push_ready(&self, worker: usize, job: JobId) {
        self.locals[worker]
            .lock()
            .expect("deque lock")
            .push_back(job);
        let now = self.ready.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_ready.fetch_max(now, Ordering::Relaxed);
        self.idle_cv.notify_one();
    }

    fn pop_job(&self, worker: usize) -> Option<JobId> {
        // Own deque first (LIFO: keeps a pipeline's data warm), then the
        // injector, then steal FIFO from any peer.
        if let Some(j) = self.locals[worker].lock().expect("deque lock").pop_back() {
            self.ready.fetch_sub(1, Ordering::Relaxed);
            return Some(j);
        }
        if let Some(j) = self.injector.lock().expect("injector lock").pop_front() {
            self.ready.fetch_sub(1, Ordering::Relaxed);
            return Some(j);
        }
        for (i, peer) in self.locals.iter().enumerate() {
            if i == worker {
                continue;
            }
            if let Some(j) = peer.lock().expect("deque lock").pop_front() {
                self.ready.fetch_sub(1, Ordering::Relaxed);
                return Some(j);
            }
        }
        None
    }

    fn finalize(&self, worker: usize, job: JobId, result: JobResult) {
        *self.results[job].lock().expect("result lock") = Some(result);
        for &dep in &self.dependents[job] {
            if self.pending[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push_ready(worker, dep);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last job: wake everyone so idle workers can exit.
            self.idle_cv.notify_all();
        }
    }

    fn emit_job_done(&self, job: JobId, worker: usize, outcome: &str, span: u64, elapsed_us: u64) {
        let node = &self.dag.jobs()[job];
        telemetry::emit(telemetry::Level::Info, "harness::exec", || {
            telemetry::EventKind::JobDone {
                job: job as u64,
                bench: node.bench.clone(),
                stage: node.stage.clone(),
                deps: node.deps.iter().map(|&d| d as u64).collect(),
                worker: worker as u64,
                outcome: outcome.to_string(),
                span,
                elapsed_us,
            }
        });
    }

    fn run_job(&self, worker: usize, job: JobId) {
        let node = &self.dag.jobs()[job];

        // Gather dependencies; any non-success upstream skips this job.
        let mut deps = Vec::with_capacity(node.deps.len());
        for &d in &node.deps {
            let dep_result = self.results[d].lock().expect("result lock");
            match dep_result.as_ref() {
                Some(JobResult::Done { artifact, .. }) => deps.push(Arc::clone(artifact)),
                Some(JobResult::Failed(_)) | Some(JobResult::Skipped) => {
                    self.skipped.fetch_add(1, Ordering::Relaxed);
                    drop(dep_result);
                    self.emit_job_done(job, worker, "skipped", 0, 0);
                    self.finalize(worker, job, JobResult::Skipped);
                    return;
                }
                None => unreachable!("dependency completed before dependent became ready"),
            }
        }

        // Adopt the submit-side handoff: the job span below parents to
        // the sweep-level span (with a flow arrow in the trace viewer)
        // even though it runs on a worker thread.
        let _ctx = self.handoffs[job].adopt("harness::exec");
        let span = telemetry::span("harness::exec", &format!("{}.{}", node.stage, node.bench));
        let span_id = span.id();
        let t0 = Instant::now();

        // Warm path: serve from the cache without running the body.
        if let (Some(cache), Some(key)) = (self.cache, node.key.as_deref()) {
            if let Some(artifact) = cache.load(&node.stage, key) {
                self.from_cache.fetch_add(1, Ordering::Relaxed);
                let elapsed_us = self.record_stage(&node.stage, t0);
                drop(span);
                self.emit_job_done(job, worker, "cached", span_id, elapsed_us);
                self.finalize(
                    worker,
                    job,
                    JobResult::Done {
                        artifact: Arc::new(artifact),
                        from_cache: true,
                    },
                );
                return;
            }
        }

        let result = match (node.run)(&deps) {
            Ok(artifact) => {
                if let (Some(cache), Some(key)) = (self.cache, node.key.as_deref()) {
                    if let Err(e) = cache.store(&node.stage, key, &artifact) {
                        eprintln!(
                            "[harness] warning: failed to cache {}/{key}: {e}",
                            node.stage
                        );
                    }
                }
                self.executed.fetch_add(1, Ordering::Relaxed);
                JobResult::Done {
                    artifact: Arc::new(artifact),
                    from_cache: false,
                }
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                JobResult::Failed(e)
            }
        };
        let outcome = match &result {
            JobResult::Done { .. } => "done",
            JobResult::Failed(_) => "failed",
            JobResult::Skipped => unreachable!("body ran"),
        };
        let elapsed_us = self.record_stage(&node.stage, t0);
        drop(span);
        self.emit_job_done(job, worker, outcome, span_id, elapsed_us);
        self.finalize(worker, job, result);
    }

    fn record_stage(&self, stage: &str, t0: Instant) -> u64 {
        let us = t0.elapsed().as_micros() as u64;
        *self
            .stage_wall
            .lock()
            .expect("stage lock")
            .entry(stage.to_string())
            .or_insert(0) += us;
        self.stage_hist
            .lock()
            .expect("stage hist lock")
            .entry(stage.to_string())
            .or_default()
            .observe(us as f64);
        us
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            match self.pop_job(worker) {
                Some(job) => self.run_job(worker, job),
                None => {
                    // Nothing runnable right now; sleep until a finishing
                    // job signals. The timeout guards against a lost
                    // wakeup racing the emptiness check.
                    let guard = self.idle_lock.lock().expect("idle lock");
                    let _ = self
                        .idle_cv
                        .wait_timeout(guard, Duration::from_millis(5))
                        .expect("idle wait");
                }
            }
        }
    }
}

/// Runs every job of `dag` on `workers` threads (clamped to at least 1)
/// and returns per-job results plus aggregate statistics. No counter
/// sampling; see [`execute_opts`].
pub fn execute(
    dag: &JobDag,
    cache: Option<&ArtifactCache>,
    workers: usize,
) -> (Vec<JobResult>, ExecStats) {
    execute_opts(
        dag,
        cache,
        &ExecOptions {
            workers,
            sample_interval: None,
        },
    )
}

/// Emits one round of counter samples (queue depth, cache traffic, the
/// uarch trace-buffer high-water mark).
fn sample_counters(shared: &Shared<'_>) {
    let emit = |name: &str, value: f64| {
        telemetry::emit(telemetry::Level::Info, "harness::exec", || {
            telemetry::EventKind::CounterSample {
                name: name.to_string(),
                value,
            }
        });
    };
    emit(
        "sched.queue_depth",
        shared.ready.load(Ordering::Relaxed) as f64,
    );
    emit(
        "sched.jobs_remaining",
        shared.remaining.load(Ordering::Relaxed) as f64,
    );
    if let Some(cache) = shared.cache {
        let (hits, misses, _) = cache.stats().snapshot();
        emit("cache.hits", hits as f64);
        emit("cache.misses", misses as f64);
        if hits + misses > 0 {
            emit("cache.hit_rate", hits as f64 / (hits + misses) as f64);
        }
    }
    emit(
        "scheduler.peak_trace_buffer_events",
        uarch::peak_trace_buffer() as f64,
    );
}

/// [`execute`] with explicit [`ExecOptions`] (worker count + optional
/// counter-sampling interval).
pub fn execute_opts(
    dag: &JobDag,
    cache: Option<&ArtifactCache>,
    opts: &ExecOptions,
) -> (Vec<JobResult>, ExecStats) {
    let n = dag.len();
    let workers = opts.workers.max(1).min(n.max(1));
    let t0 = Instant::now();

    let mut dependents = vec![Vec::new(); n];
    for (id, job) in dag.jobs().iter().enumerate() {
        for &d in &job.deps {
            dependents[d].push(id);
        }
    }
    let shared = Shared {
        dag,
        cache,
        // Captured here, on the submitting thread, so each token's parent
        // is the caller's current span (the sweep span).
        handoffs: (0..n)
            .map(|_| telemetry::handoff("harness::exec"))
            .collect(),
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        pending: dag
            .jobs()
            .iter()
            .map(|j| AtomicUsize::new(j.deps.len()))
            .collect(),
        dependents,
        remaining: AtomicUsize::new(n),
        injector: Mutex::new(VecDeque::new()),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        ready: AtomicUsize::new(0),
        max_ready: AtomicUsize::new(0),
        executed: AtomicU64::new(0),
        from_cache: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        skipped: AtomicU64::new(0),
        stage_wall: Mutex::new(BTreeMap::new()),
        stage_hist: Mutex::new(BTreeMap::new()),
        idle_lock: Mutex::new(()),
        idle_cv: Condvar::new(),
    };

    // Seed the injector with every dependency-free job.
    {
        let mut injector = shared.injector.lock().expect("injector lock");
        for (id, job) in dag.jobs().iter().enumerate() {
            if job.deps.is_empty() {
                injector.push_back(id);
            }
        }
        let seeded = injector.len();
        shared.ready.store(seeded, Ordering::Relaxed);
        shared.max_ready.store(seeded, Ordering::Relaxed);
    }

    if n > 0 {
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let shared = &shared;
                scope.spawn(move || shared.worker_loop(worker));
            }
            // Sampler: wakes at the configured interval until the last
            // job finalizes (`remaining` doubles as the stop flag), then
            // takes one final sample so short runs still get a data
            // point per counter.
            if let Some(interval) = opts.sample_interval {
                let shared = &shared;
                scope.spawn(move || loop {
                    sample_counters(shared);
                    // Sleep in short slices so run completion never waits
                    // a full sampling interval on this thread.
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if shared.remaining.load(Ordering::Acquire) == 0 {
                            sample_counters(shared);
                            return;
                        }
                        let chunk = (interval - slept).min(Duration::from_millis(5));
                        std::thread::sleep(chunk);
                        slept += chunk;
                    }
                });
            }
        });
    }

    let results: Vec<JobResult> = shared
        .results
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("result lock")
                .clone()
                .expect("every job reaches a terminal state")
        })
        .collect();
    let stats = ExecStats {
        workers,
        executed: shared.executed.load(Ordering::Relaxed),
        from_cache: shared.from_cache.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        skipped: shared.skipped.load(Ordering::Relaxed),
        max_queue_depth: shared.max_ready.load(Ordering::Relaxed) as u64,
        wall_clock_us: t0.elapsed().as_micros() as u64,
        stage_wall_us: shared.stage_wall.into_inner().expect("stage lock"),
        stage_job_us: shared.stage_hist.into_inner().expect("stage hist lock"),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(v: f32) -> Artifact {
        Artifact::Outputs(vec![v])
    }

    fn first(deps: &[Arc<Artifact>]) -> f32 {
        deps[0].as_outputs().unwrap()[0]
    }

    #[test]
    fn diamond_dag_runs_in_dependency_order() {
        // a → (b, c) → d; d sums b and c.
        let mut dag = JobDag::new();
        let a = dag.add("s", "t", None, vec![], Box::new(|_| Ok(out(1.0))));
        let b = dag.add(
            "s",
            "t",
            None,
            vec![a],
            Box::new(|d: &[Arc<Artifact>]| Ok(out(first(d) + 10.0))),
        );
        let c = dag.add(
            "s",
            "t",
            None,
            vec![a],
            Box::new(|d: &[Arc<Artifact>]| Ok(out(first(d) + 100.0))),
        );
        let d = dag.add(
            "s",
            "t",
            None,
            vec![b, c],
            Box::new(|d: &[Arc<Artifact>]| Ok(out(first(d) + d[1].as_outputs().unwrap()[0]))),
        );
        for workers in [1, 4] {
            let (results, stats) = execute(&dag, None, workers);
            match &results[d] {
                JobResult::Done { artifact, .. } => {
                    assert_eq!(artifact.as_outputs().unwrap(), &[112.0]);
                }
                other => panic!("unexpected result: {other:?}"),
            }
            assert_eq!(stats.executed, 4);
            assert_eq!(stats.failed + stats.skipped, 0);
        }
    }

    #[test]
    fn failure_skips_all_transitive_dependents() {
        // fail → mid → leaf, plus an independent job that must still run.
        let mut dag = JobDag::new();
        let f = dag.add("s", "t", None, vec![], Box::new(|_| Err("boom".into())));
        let mid = dag.add("s", "t", None, vec![f], Box::new(|_| Ok(out(0.0))));
        let leaf = dag.add("s", "t", None, vec![mid], Box::new(|_| Ok(out(0.0))));
        let solo = dag.add("s", "t", None, vec![], Box::new(|_| Ok(out(7.0))));
        let (results, stats) = execute(&dag, None, 2);
        assert!(matches!(&results[f], JobResult::Failed(e) if e == "boom"));
        assert!(matches!(results[mid], JobResult::Skipped));
        assert!(matches!(results[leaf], JobResult::Skipped));
        assert!(matches!(results[solo], JobResult::Done { .. }));
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn cache_hit_skips_the_body() {
        let dir = std::env::temp_dir().join(format!("harness-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let mut dag = JobDag::new();
        dag.add(
            "stage",
            "t",
            Some("deadbeef".into()),
            vec![],
            Box::new(|_| Ok(out(3.0))),
        );
        let (_, cold) = execute(&dag, Some(&cache), 1);
        assert_eq!((cold.executed, cold.from_cache), (1, 0));
        let (results, warm) = execute(&dag, Some(&cache), 1);
        assert_eq!((warm.executed, warm.from_cache), (0, 1));
        match &results[0] {
            JobResult::Done {
                artifact,
                from_cache,
            } => {
                assert!(from_cache);
                assert_eq!(artifact.as_outputs().unwrap(), &[3.0]);
            }
            other => panic!("unexpected result: {other:?}"),
        }
        assert_eq!(cache.stats().snapshot(), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wide_fanout_saturates_queue_depth() {
        let mut dag = JobDag::new();
        let root = dag.add("s", "t", None, vec![], Box::new(|_| Ok(out(0.0))));
        for _ in 0..16 {
            dag.add("s", "t", None, vec![root], Box::new(|_| Ok(out(1.0))));
        }
        let (results, stats) = execute(&dag, None, 4);
        assert_eq!(results.len(), 17);
        assert!(results.iter().all(|r| matches!(r, JobResult::Done { .. })));
        assert!(
            stats.max_queue_depth >= 4,
            "depth {}",
            stats.max_queue_depth
        );
    }
}

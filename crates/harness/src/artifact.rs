//! The typed payloads jobs produce and the cache persists.
//!
//! Every variant is JSON-serializable so an artifact written by one sweep
//! can be loaded by a later one (resume) or by a re-run with the same
//! inputs (warm cache). Artifacts carry *data*, never closures or handles:
//! anything cheap and deterministic (code generation, report formatting)
//! is recomputed from them instead of stored.

use parrot::Observation;
use serde::{Deserialize, Serialize};

/// The trained-network artifact: everything needed to reassemble a
/// [`parrot::CompiledRegion`] without re-observing or re-training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainArtifact {
    /// The topology-search outcome (selected network + all candidates).
    pub outcome: ann::SearchOutcome,
    /// Input-side normalization ranges from the observation.
    pub input_norm: ann::Normalizer,
    /// Output-side normalization ranges from the observation.
    pub output_norm: ann::Normalizer,
}

/// Dynamic instruction counts from one counting run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountsArtifact {
    /// Total dynamic instructions.
    pub total: u64,
    /// NPU queue instructions among them.
    pub npu_queue: u64,
}

/// Core (and optionally NPU) statistics from one cycle-level run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingArtifact {
    /// Final core statistics.
    pub stats: uarch::SimStats,
    /// NPU statistics when a cycle-accurate NPU was attached.
    pub npu: Option<npu::NpuStats>,
    /// Per-invocation NPU latency distribution in simulated cycles
    /// (deterministic — cached and diffed like every other artifact
    /// field).
    pub npu_invocation_cycles: Option<telemetry::Histogram>,
}

/// Whole-system energy for the baseline, NPU, and ideal-NPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyArtifact {
    /// Baseline (core-only) energy in picojoules.
    pub baseline_pj: f64,
    /// Core + 8-PE-NPU energy in picojoules.
    pub npu_pj: f64,
    /// Core + ideal (zero-cost) NPU energy in picojoules.
    pub ideal_pj: f64,
}

/// One job's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Artifact {
    /// Code observation: logged samples + value ranges.
    Observe(Observation),
    /// Topology search + training result.
    Train(TrainArtifact),
    /// Application output elements from a functional run.
    Outputs(Vec<f32>),
    /// Dynamic instruction counts.
    Counts(CountsArtifact),
    /// Cycle-level timing statistics.
    Timing(TimingArtifact),
    /// Energy totals.
    Energy(EnergyArtifact),
    /// A per-benchmark run report.
    Report(telemetry::RunReport),
}

impl Artifact {
    /// Short variant name (used in error messages and job labels).
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Observe(_) => "observe",
            Artifact::Train(_) => "train",
            Artifact::Outputs(_) => "outputs",
            Artifact::Counts(_) => "counts",
            Artifact::Timing(_) => "timing",
            Artifact::Energy(_) => "energy",
            Artifact::Report(_) => "report",
        }
    }

    /// The train payload, or an error naming the actual kind.
    pub fn as_train(&self) -> Result<&TrainArtifact, String> {
        match self {
            Artifact::Train(t) => Ok(t),
            other => Err(format!("expected train artifact, got {}", other.kind())),
        }
    }

    /// The observation payload, or an error naming the actual kind.
    pub fn as_observe(&self) -> Result<&Observation, String> {
        match self {
            Artifact::Observe(o) => Ok(o),
            other => Err(format!("expected observe artifact, got {}", other.kind())),
        }
    }

    /// The outputs payload, or an error naming the actual kind.
    pub fn as_outputs(&self) -> Result<&[f32], String> {
        match self {
            Artifact::Outputs(v) => Ok(v),
            other => Err(format!("expected outputs artifact, got {}", other.kind())),
        }
    }

    /// The counts payload, or an error naming the actual kind.
    pub fn as_counts(&self) -> Result<&CountsArtifact, String> {
        match self {
            Artifact::Counts(c) => Ok(c),
            other => Err(format!("expected counts artifact, got {}", other.kind())),
        }
    }

    /// The timing payload, or an error naming the actual kind.
    pub fn as_timing(&self) -> Result<&TimingArtifact, String> {
        match self {
            Artifact::Timing(t) => Ok(t),
            other => Err(format!("expected timing artifact, got {}", other.kind())),
        }
    }

    /// The energy payload, or an error naming the actual kind.
    pub fn as_energy(&self) -> Result<&EnergyArtifact, String> {
        match self {
            Artifact::Energy(e) => Ok(e),
            other => Err(format!("expected energy artifact, got {}", other.kind())),
        }
    }

    /// The report payload, or an error naming the actual kind.
    pub fn as_report(&self) -> Result<&telemetry::RunReport, String> {
        match self {
            Artifact::Report(r) => Ok(r),
            other => Err(format!("expected report artifact, got {}", other.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_round_trip_through_json() {
        let cases = vec![
            Artifact::Outputs(vec![0.25, -1.5, 3.0]),
            Artifact::Counts(CountsArtifact {
                total: 1000,
                npu_queue: 12,
            }),
            Artifact::Timing(TimingArtifact {
                stats: uarch::SimStats {
                    cycles: 77,
                    committed: 55,
                    ..uarch::SimStats::default()
                },
                npu: None,
                npu_invocation_cycles: Some({
                    let mut h = telemetry::Histogram::default();
                    h.observe(64.0);
                    h.observe(66.0);
                    h
                }),
            }),
            Artifact::Energy(EnergyArtifact {
                baseline_pj: 10.0,
                npu_pj: 4.0,
                ideal_pj: 3.5,
            }),
        ];
        for artifact in cases {
            let json = serde::json::to_string(&artifact);
            let back: Artifact = serde::json::from_str(&json).unwrap();
            assert_eq!(back, artifact);
        }
    }

    #[test]
    fn accessors_reject_wrong_kind() {
        let a = Artifact::Outputs(vec![]);
        assert!(a.as_train().is_err());
        assert!(a.as_outputs().is_ok());
    }
}

//! The content-addressed artifact cache.
//!
//! Layout: `<dir>/<stage>/<key>.json`, one JSON-serialized [`Artifact`]
//! per file. Keys are [`crate::hash::KeyHasher`] digests over everything
//! that determines the artifact's content — so a key match *is* a
//! semantic match, files never need invalidation timestamps, and a
//! partially-completed sweep resumes by simply hitting the keys it
//! already produced.
//!
//! Writes go through a temp file + rename so an interrupted run never
//! leaves a torn artifact behind; unreadable or unparsable files are
//! treated as misses (and overwritten on store).

use crate::artifact::Artifact;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free cache-traffic counters (shared across worker threads).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a valid artifact.
    pub hits: AtomicU64,
    /// Lookups that found nothing (or an unreadable file).
    pub misses: AtomicU64,
    /// Artifacts written back.
    pub writes: AtomicU64,
}

impl CacheStats {
    /// Snapshot of `(hits, misses, writes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

/// A directory of content-addressed artifacts.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    stats: CacheStats,
}

impl ArtifactCache {
    /// Opens (and lazily creates) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactCache {
        ArtifactCache {
            dir: dir.into(),
            stats: CacheStats::default(),
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache's traffic counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn path_for(&self, stage: &str, key: &str) -> PathBuf {
        self.dir.join(stage).join(format!("{key}.json"))
    }

    /// Loads the artifact stored under `(stage, key)`, if any. Counts a
    /// hit or miss; a file that exists but does not parse is a miss.
    pub fn load(&self, stage: &str, key: &str) -> Option<Artifact> {
        let t0 = std::time::Instant::now();
        let path = self.path_for(stage, key);
        let loaded = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde::json::from_str::<Artifact>(&text).ok());
        telemetry::record_sample("harness.cache.lookup_us", t0.elapsed().as_micros() as f64);
        match loaded {
            Some(artifact) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(artifact)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `artifact` under `(stage, key)` atomically (temp file +
    /// rename). Errors are reported, not fatal: a failed store only costs
    /// a future cache miss.
    pub fn store(&self, stage: &str, key: &str, artifact: &Artifact) -> std::io::Result<()> {
        let path = self.path_for(stage, key);
        let parent = path.parent().expect("cache paths always have a parent");
        std::fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(".{key}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, serde::json::to_string(artifact))?;
        std::fs::rename(&tmp, &path)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CountsArtifact;

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("harness-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = temp_cache("roundtrip");
        let artifact = Artifact::Counts(CountsArtifact {
            total: 9,
            npu_queue: 2,
        });
        assert!(cache.load("counts", "abc").is_none());
        cache.store("counts", "abc", &artifact).unwrap();
        assert_eq!(cache.load("counts", "abc"), Some(artifact));
        assert_eq!(cache.stats().snapshot(), (1, 1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_file_is_a_miss() {
        let cache = temp_cache("corrupt");
        let path = cache.dir().join("train").join("bad.json");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.load("train", "bad").is_none());
        assert_eq!(cache.stats().snapshot(), (0, 1, 0));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn keys_are_namespaced_by_stage() {
        let cache = temp_cache("stages");
        let artifact = Artifact::Outputs(vec![1.0]);
        cache.store("observe", "k", &artifact).unwrap();
        assert!(cache.load("train", "k").is_none());
        assert!(cache.load("observe", "k").is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

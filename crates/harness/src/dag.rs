//! The job DAG: every experiment step is a node with explicit data
//! dependencies, a content-addressed cache key, and a pure body.
//!
//! A body receives its dependencies' artifacts (in declaration order) and
//! returns its own artifact. Bodies must be deterministic functions of
//! those inputs — that is what makes the cache key sound and parallel
//! execution bit-identical to serial execution.

use crate::artifact::Artifact;
use std::sync::Arc;

/// Index of a job within its DAG.
pub type JobId = usize;

/// A job body: dependencies' artifacts in, own artifact out.
pub type JobFn = Box<dyn Fn(&[Arc<Artifact>]) -> Result<Artifact, String> + Send + Sync>;

/// One node of the DAG.
pub struct Job {
    /// Pipeline stage name (`observe`, `train`, `sim_npu`, …) — the cache
    /// namespace and the per-stage wall-clock bucket.
    pub stage: String,
    /// The benchmark this job belongs to (or a pseudo-name for shared
    /// jobs).
    pub bench: String,
    /// Content-addressed cache key (32 hex digits); `None` disables
    /// caching for this job.
    pub key: Option<String>,
    /// Jobs whose artifacts this body consumes, in the order the body
    /// expects them.
    pub deps: Vec<JobId>,
    /// The body.
    pub run: JobFn,
}

/// A dependency-ordered set of jobs under construction.
#[derive(Default)]
pub struct JobDag {
    jobs: Vec<Job>,
}

impl JobDag {
    /// An empty DAG.
    pub fn new() -> JobDag {
        JobDag::default()
    }

    /// Adds a job and returns its id. Dependencies must already be in the
    /// DAG (ids are handed out in insertion order), which makes cycles
    /// unrepresentable.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is out of range (a harness bug).
    pub fn add(
        &mut self,
        stage: impl Into<String>,
        bench: impl Into<String>,
        key: Option<String>,
        deps: Vec<JobId>,
        run: JobFn,
    ) -> JobId {
        let id = self.jobs.len();
        for &d in &deps {
            assert!(d < id, "job dependency {d} not yet added (adding {id})");
        }
        self.jobs.push(Job {
            stage: stage.into(),
            bench: bench.into(),
            key,
            deps,
            run,
        });
        id
    }

    /// The jobs, indexed by id.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_insertion_ordered() {
        let mut dag = JobDag::new();
        let a = dag.add(
            "s",
            "b",
            None,
            vec![],
            Box::new(|_| Ok(Artifact::Outputs(vec![]))),
        );
        let b = dag.add(
            "s",
            "b",
            None,
            vec![a],
            Box::new(|_| Ok(Artifact::Outputs(vec![]))),
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.jobs()[b].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_dependencies_are_rejected() {
        let mut dag = JobDag::new();
        dag.add(
            "s",
            "b",
            None,
            vec![5],
            Box::new(|_| Ok(Artifact::Outputs(vec![]))),
        );
    }
}

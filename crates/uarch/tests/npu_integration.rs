//! Core↔NPU integration at the unit level: queue instructions through the
//! pipeline against cycle-accurate and ideal NPU attachments.

use ann::{Mlp, Normalizer, Topology};
use approx_ir::{OpClass, TraceEvent};
use npu::{NpuConfig, NpuParams, NpuSim};
use uarch::{Core, CoreConfig};

fn npu_config(layers: Vec<usize>) -> NpuConfig {
    let t = Topology::new(layers).unwrap();
    let (i, o) = (t.inputs(), t.outputs());
    NpuConfig::new(
        Mlp::seeded(t, 3),
        Normalizer::identity(i),
        Normalizer::identity(o),
    )
}

fn enq(pc: u64) -> TraceEvent {
    TraceEvent::simple(pc, OpClass::NpuEnqD, [Some(1), None, None], None)
}

fn deq(pc: u64) -> TraceEvent {
    TraceEvent::simple(pc, OpClass::NpuDeqD, [None; 3], Some(2))
}

fn invocation_trace(n_in: usize, n_out: usize, rounds: usize) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for r in 0..rounds {
        for i in 0..n_in {
            events.push(enq((r * 16 + i) as u64 % 32));
        }
        for o in 0..n_out {
            events.push(deq((r * 16 + 8 + o) as u64 % 32));
        }
        // Some glue work between invocations.
        for g in 0..4 {
            events.push(TraceEvent::simple(
                40 + g,
                OpClass::IntAlu,
                [Some(2), None, None],
                Some(3),
            ));
        }
    }
    events
}

#[test]
fn cycle_npu_completes_every_invocation() {
    let config = npu_config(vec![2, 4, 1]);
    let mut sim = NpuSim::new(NpuParams::default());
    sim.configure(&config).unwrap();
    let mut core = Core::with_npu(CoreConfig::penryn_like(), sim);
    for ev in invocation_trace(2, 1, 50) {
        core.feed(ev);
    }
    let stats = core.finish();
    let npu_stats = core.npu_stats().expect("cycle NPU attached");
    assert_eq!(npu_stats.invocations, 50);
    assert_eq!(stats.npu_queue_ops, 50 * 3);
    assert_eq!(stats.committed, 50 * 7);
}

#[test]
fn npu_latency_shows_up_in_cycles() {
    // A big network per invocation must cost more cycles than a tiny one.
    let run = |layers: Vec<usize>| {
        let config = npu_config(layers);
        let t = config.topology().clone();
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        let mut core = Core::with_npu(CoreConfig::penryn_like(), sim);
        for ev in invocation_trace(t.inputs(), t.outputs(), 30) {
            core.feed(ev);
        }
        core.finish().cycles
    };
    let small = run(vec![2, 2, 1]);
    let large = run(vec![2, 32, 32, 1]);
    assert!(large > 2 * small, "small={small} large={large}");
}

#[test]
fn ideal_npu_is_faster_than_cycle_npu() {
    let config = npu_config(vec![4, 8, 2]);
    let events = invocation_trace(4, 2, 40);
    let mut sim = NpuSim::new(NpuParams::default());
    sim.configure(&config).unwrap();
    let mut real = Core::with_npu(CoreConfig::penryn_like(), sim);
    let mut ideal = Core::with_ideal_npu(CoreConfig::penryn_like(), 4, 2);
    for ev in &events {
        real.feed(*ev);
        ideal.feed(*ev);
    }
    let real_cycles = real.finish().cycles;
    let ideal_cycles = ideal.finish().cycles;
    assert!(
        ideal_cycles <= real_cycles,
        "ideal {ideal_cycles} vs real {real_cycles}"
    );
}

#[test]
fn link_latency_slows_queue_round_trips() {
    let run = |latency: u64| {
        let config = npu_config(vec![2, 4, 1]);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        let mut core = Core::with_npu(CoreConfig::with_npu_link_latency(latency), sim);
        for ev in invocation_trace(2, 1, 40) {
            core.feed(ev);
        }
        core.finish().cycles
    };
    assert!(run(16) > run(1));
}

#[test]
fn queue_instructions_stay_ordered_under_pressure() {
    // Many back-to-back invocations with zero glue: the input FIFO and
    // serialization must keep everything consistent (no deadlock, exact
    // counts).
    let config = npu_config(vec![3, 4, 2]);
    let mut sim = NpuSim::new(NpuParams::default());
    sim.configure(&config).unwrap();
    let mut core = Core::with_npu(CoreConfig::penryn_like(), sim);
    for r in 0..200u64 {
        for i in 0..3 {
            core.feed(enq((r + i) % 16));
        }
        for o in 0..2 {
            core.feed(deq((r + o + 8) % 16));
        }
    }
    let stats = core.finish();
    let npu_stats = core.npu_stats().unwrap();
    assert_eq!(npu_stats.invocations, 200);
    assert_eq!(stats.npu_queue_ops, 200 * 5);
}

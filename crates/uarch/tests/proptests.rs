//! Property-based tests for the core model: conservation of
//! instructions, cache behaviour, and timing monotonicity.

use approx_ir::{BranchInfo, MemAccess, OpClass, TraceEvent};
use proptest::prelude::*;
use uarch::{CacheConfig, CacheModel, Core, CoreConfig};

fn random_event(kind: u8, i: u64) -> TraceEvent {
    match kind % 5 {
        0 => TraceEvent::simple(i % 64, OpClass::IntAlu, [Some(1), None, None], Some(2)),
        1 => TraceEvent::simple(i % 64, OpClass::FpAdd, [Some(2), None, None], Some(3)),
        2 => TraceEvent {
            pc: i % 64,
            class: OpClass::Load,
            srcs: [Some(1), None, None],
            dst: Some(4),
            mem: Some(MemAccess {
                addr: (i * 16) % 4096,
                is_store: false,
            }),
            branch: None,
        },
        3 => TraceEvent {
            pc: i % 64,
            class: OpClass::Store,
            srcs: [Some(4), Some(1), None],
            dst: None,
            mem: Some(MemAccess {
                addr: (i * 16) % 4096,
                is_store: true,
            }),
            branch: None,
        },
        _ => TraceEvent {
            pc: i % 64,
            class: OpClass::Branch,
            srcs: [Some(2), None, None],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                taken: i.is_multiple_of(3),
                conditional: true,
                target: (i + 7) % 64,
            }),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every fed instruction commits exactly once, for arbitrary mixes.
    #[test]
    fn committed_equals_fed(kinds in proptest::collection::vec(any::<u8>(), 1..400)) {
        let mut core = Core::new(CoreConfig::penryn_like());
        for (i, &k) in kinds.iter().enumerate() {
            core.feed(random_event(k, i as u64));
        }
        let stats = core.finish();
        prop_assert_eq!(stats.committed, kinds.len() as u64);
        // Per-class counts also sum to the total.
        let by_class = stats.int_ops
            + stats.fp_add_ops
            + stats.fp_mul_ops
            + stats.fp_div_ops
            + stats.fp_sqrt_ops
            + stats.fp_trig_ops
            + stats.loads
            + stats.stores
            + stats.branches
            + stats.npu_queue_ops;
        prop_assert_eq!(by_class, stats.committed);
        // A finite pipeline cannot commit faster than its width.
        prop_assert!(stats.cycles * 4 >= stats.committed);
    }

    /// Adding instructions never reduces total cycles (prefix
    /// monotonicity of the timing model).
    #[test]
    fn cycles_grow_with_work(kinds in proptest::collection::vec(any::<u8>(), 2..200)) {
        let half = kinds.len() / 2;
        let run = |slice: &[u8]| {
            let mut core = Core::new(CoreConfig::penryn_like());
            for (i, &k) in slice.iter().enumerate() {
                core.feed(random_event(k, i as u64));
            }
            core.finish().cycles
        };
        prop_assert!(run(&kinds) >= run(&kinds[..half]));
    }

    /// Cache hits + misses equals accesses, and a repeated access always
    /// hits immediately after.
    #[test]
    fn cache_accounting(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut cache = CacheModel::new(CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            hit_latency: 3,
        });
        for &a in &addrs {
            cache.access(a);
            prop_assert!(cache.access(a), "immediate re-access of {a} must hit");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), 2 * addrs.len() as u64);
        prop_assert!(cache.hits() >= addrs.len() as u64);
    }

    /// The working-set effect: streaming over a footprint larger than the
    /// cache misses more than one that fits.
    #[test]
    fn capacity_misses_appear(rounds in 2usize..6) {
        let small_footprint = 16u64; // 16 lines in a 64-line cache
        let large_footprint = 256u64; // 4x the cache
        let run = |lines: u64| {
            let mut cache = CacheModel::new(CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 4,
                hit_latency: 3,
            });
            for _ in 0..rounds {
                for l in 0..lines {
                    cache.access(l * 64);
                }
            }
            cache.misses() as f64 / (cache.hits() + cache.misses()) as f64
        };
        prop_assert!(run(large_footprint) > run(small_footprint));
    }
}

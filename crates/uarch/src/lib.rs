//! Trace-driven cycle-level model of a speculative out-of-order core with
//! the NPU queue ISA extensions.
//!
//! The paper evaluates on MARSSx86 configured like Intel's Penryn: a 4-wide
//! fetch / 6-wide issue out-of-order x86-64 core with a 96-entry ROB,
//! 32-entry issue queue, 48/48 load/store queues, tournament branch
//! prediction, 32 KB L1 caches, and a 2 MB L2 (paper Table 2). This crate
//! reproduces that machine as a trace-driven cycle model: the `approx-ir`
//! interpreter pushes each dynamically executed instruction into
//! [`Core::feed`], and the core accounts fetch/dispatch/issue/execute/
//! commit timing, cache misses, branch mispredictions, and the NPU queue
//! protocol of paper Section 5.
//!
//! Because the trace contains only correct-path instructions, wrong-path
//! *work* is modelled as a front-end redirect penalty; the NPU's
//! speculative-FIFO rollback machinery is exercised directly by the `npu`
//! crate's unit tests and this crate's integration tests.
//!
//! # Example
//!
//! ```
//! use approx_ir::{FunctionBuilder, Interpreter, Program, Value};
//! use uarch::{Core, CoreConfig};
//!
//! let mut b = FunctionBuilder::new("work", 1);
//! let x = b.param(0);
//! let mut acc = b.constf(0.0);
//! for _ in 0..10 {
//!     acc = b.fadd(acc, x);
//! }
//! b.ret(&[acc]);
//! let mut program = Program::new();
//! let f = program.add_function(b.build()?);
//!
//! let mut core = Core::new(CoreConfig::penryn_like());
//! Interpreter::new(&program).run_traced(f, &[Value::F(1.0)], &mut core)?;
//! let stats = core.finish();
//! assert_eq!(stats.committed, 12);
//! assert!(stats.cycles > 0);
//! # Ok::<(), approx_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod core;
mod npu_iface;
mod predictor;
mod stats;

pub use crate::core::{peak_trace_buffer, reset_peak_trace_buffer, Core};
pub use cache::{CacheConfig, CacheModel, MemoryHierarchy};
pub use config::{CoreConfig, OpLatencies};
pub use npu_iface::NpuAttachment;
pub use predictor::BranchPredictor;
pub use stats::SimStats;

//! Simulation statistics consumed by the harness and the energy model.

use serde::{Deserialize, Serialize};

/// Event counts and timing from one core simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed integer ALU class instructions (incl. moves, converts).
    pub int_ops: u64,
    /// Committed FP add/sub/cmp instructions.
    pub fp_add_ops: u64,
    /// Committed FP multiplies.
    pub fp_mul_ops: u64,
    /// Committed FP divides.
    pub fp_div_ops: u64,
    /// Committed FP square roots.
    pub fp_sqrt_ops: u64,
    /// Committed libm trig stand-ins.
    pub fp_trig_ops: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed control-flow instructions.
    pub branches: u64,
    /// Committed NPU queue instructions (`enq.d`+`deq.d`+`enq.c`+`deq.c`).
    pub npu_queue_ops: u64,
    /// Branch predictor lookups.
    pub bp_lookups: u64,
    /// Branch mispredictions (direction or target).
    pub bp_mispredicts: u64,
    /// L1D hits.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM accesses.
    pub mem_accesses: u64,
    /// Cycles dispatch stalled on a full ROB.
    pub rob_full_stalls: u64,
    /// Cycles dispatch stalled on a full issue queue.
    pub iq_full_stalls: u64,
    /// Cycles dispatch stalled on full load/store queues.
    pub lsq_full_stalls: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over all predictor lookups.
    pub fn mispredict_rate(&self) -> f64 {
        if self.bp_lookups == 0 {
            0.0
        } else {
            self.bp_mispredicts as f64 / self.bp_lookups as f64
        }
    }

    /// L1D miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }

    /// L1D hit rate (0 when the cache was never accessed).
    pub fn l1d_hit_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_hits as f64 / total as f64
        }
    }

    /// L2 hit rate (0 when the cache was never accessed).
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Committed floating-point instructions of every flavour.
    pub fn fp_ops(&self) -> u64 {
        self.fp_add_ops + self.fp_mul_ops + self.fp_div_ops + self.fp_sqrt_ops + self.fp_trig_ops
    }

    /// Exports every raw counter and the derived rates into `registry`
    /// under `prefix` (e.g. `uarch.baseline`).
    pub fn export(&self, registry: &mut telemetry::MetricsRegistry, prefix: &str) {
        let mut c = |name: &str, value: u64| registry.add(&format!("{prefix}.{name}"), value);
        c("cycles", self.cycles);
        c("committed", self.committed);
        c("int_ops", self.int_ops);
        c("fp_add_ops", self.fp_add_ops);
        c("fp_mul_ops", self.fp_mul_ops);
        c("fp_div_ops", self.fp_div_ops);
        c("fp_sqrt_ops", self.fp_sqrt_ops);
        c("fp_trig_ops", self.fp_trig_ops);
        c("loads", self.loads);
        c("stores", self.stores);
        c("branches", self.branches);
        c("npu_queue_ops", self.npu_queue_ops);
        c("bp_lookups", self.bp_lookups);
        c("bp_mispredicts", self.bp_mispredicts);
        c("l1d_hits", self.l1d_hits);
        c("l1d_misses", self.l1d_misses);
        c("l2_hits", self.l2_hits);
        c("l2_misses", self.l2_misses);
        c("mem_accesses", self.mem_accesses);
        c("rob_full_stalls", self.rob_full_stalls);
        c("iq_full_stalls", self.iq_full_stalls);
        c("lsq_full_stalls", self.lsq_full_stalls);
        registry.set_gauge(&format!("{prefix}.ipc"), self.ipc());
        registry.set_gauge(&format!("{prefix}.mispredict_rate"), self.mispredict_rate());
        registry.set_gauge(&format!("{prefix}.l1d_hit_rate"), self.l1d_hit_rate());
        registry.set_gauge(&format!("{prefix}.l2_hit_rate"), self.l2_hit_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            bp_lookups: 50,
            bp_mispredicts: 5,
            l1d_hits: 90,
            l1d_misses: 10,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-9);
        assert!((s.l1d_miss_rate() - 0.1).abs() < 1e-9);
        assert!((s.l1d_hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.l1d_miss_rate(), 0.0);
        assert_eq!(s.l1d_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
    }

    #[test]
    fn export_namespaces_counters_and_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            l1d_hits: 90,
            l1d_misses: 10,
            l2_hits: 6,
            l2_misses: 4,
            ..SimStats::default()
        };
        let mut reg = telemetry::MetricsRegistry::new();
        s.export(&mut reg, "uarch.baseline");
        assert_eq!(reg.counter("uarch.baseline.cycles"), 100);
        assert_eq!(reg.counter("uarch.baseline.l1d_hits"), 90);
        assert_eq!(reg.gauge("uarch.baseline.ipc"), Some(2.5));
        assert_eq!(reg.gauge("uarch.baseline.l2_hit_rate"), Some(0.6));
    }
}

//! Branch prediction: gshare direction predictor + BTB + return stack.
//!
//! Table 2 lists a 48 KB tournament predictor, a 1024-set × 4-way BTB and
//! a 64-entry RAS. We model direction prediction with gshare (a close
//! stand-in at this storage budget), targets with a direct-mapped BTB, and
//! returns with a RAS. Direct jumps and calls always redirect correctly
//! after their first BTB allocation; only conditional-branch direction and
//! BTB-cold taken branches mispredict.

use approx_ir::BranchInfo;

/// Outcome of consulting the predictor at fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Whether the fetch stream continues on the correct path (no
    /// redirect-at-resolve needed).
    pub correct: bool,
}

/// The front-end predictor bundle.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters.
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    /// Direct-mapped BTB: `Some(target)` per entry.
    btb: Vec<Option<(u64, u64)>>,
    ras: Vec<u64>,
    ras_capacity: usize,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `gshare_bits` of history/index and the
    /// given BTB and RAS sizes.
    pub fn new(gshare_bits: u32, btb_entries: usize, ras_entries: usize) -> Self {
        assert!((2..=24).contains(&gshare_bits));
        assert!(btb_entries.is_power_of_two());
        BranchPredictor {
            counters: vec![1; 1 << gshare_bits], // weakly not-taken
            history: 0,
            history_mask: (1u64 << gshare_bits) - 1,
            btb: vec![None; btb_entries],
            ras: Vec::with_capacity(ras_entries),
            ras_capacity: ras_entries,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Consults and trains the predictor for a control instruction at
    /// `pc` with actual outcome `info`. `is_call`/`is_ret` select RAS
    /// handling.
    pub fn predict_and_train(
        &mut self,
        pc: u64,
        info: &BranchInfo,
        is_call: bool,
        is_ret: bool,
    ) -> Prediction {
        self.lookups += 1;
        if is_ret {
            // RAS: correct when the stack has a matching entry.
            let correct = self.ras.pop().is_some();
            if !correct {
                self.mispredicts += 1;
            }
            return Prediction { correct };
        }
        if is_call {
            if self.ras.len() == self.ras_capacity {
                self.ras.remove(0);
            }
            self.ras.push(pc + 1);
            // Direct call: target known after first BTB fill.
            let correct = self.btb_check_fill(pc, info.target);
            if !correct {
                self.mispredicts += 1;
            }
            return Prediction { correct };
        }
        if !info.conditional {
            // Direct jump.
            let correct = self.btb_check_fill(pc, info.target);
            if !correct {
                self.mispredicts += 1;
            }
            return Prediction { correct };
        }
        // Conditional branch: gshare direction + BTB target when taken.
        let idx = ((pc ^ self.history) & self.history_mask) as usize;
        let counter = self.counters[idx];
        let predicted_taken = counter >= 2;
        // Train.
        self.counters[idx] = if info.taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.history = ((self.history << 1) | u64::from(info.taken)) & self.history_mask;
        let direction_correct = predicted_taken == info.taken;
        let target_correct = if info.taken {
            self.btb_check_fill(pc, info.target)
        } else {
            true
        };
        let correct = direction_correct && target_correct;
        if !correct {
            self.mispredicts += 1;
        }
        Prediction { correct }
    }

    /// Returns whether the BTB knew the target; fills it either way.
    fn btb_check_fill(&mut self, pc: u64, target: u64) -> bool {
        let idx = (pc as usize) & (self.btb.len() - 1);
        let hit = self.btb[idx] == Some((pc, target));
        self.btb[idx] = Some((pc, target));
        hit
    }

    /// Control-flow instructions predicted.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions (direction or target).
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken(target: u64) -> BranchInfo {
        BranchInfo {
            taken: true,
            conditional: true,
            target,
        }
    }

    fn not_taken() -> BranchInfo {
        BranchInfo {
            taken: false,
            conditional: true,
            target: 0,
        }
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::new(10, 256, 16);
        // Warm up: strongly taken (long enough for the global history to
        // saturate so the gshare index stabilizes).
        for _ in 0..50 {
            p.predict_and_train(100, &taken(50), false, false);
        }
        let before = p.mispredicts();
        for _ in 0..100 {
            p.predict_and_train(100, &taken(50), false, false);
        }
        assert_eq!(p.mispredicts(), before, "biased branch should be perfect");
    }

    #[test]
    fn alternating_pattern_is_learned_by_history() {
        let mut p = BranchPredictor::new(10, 256, 16);
        // T N T N … — gshare's history disambiguates the two contexts.
        for i in 0..200u64 {
            let info = if i % 2 == 0 { taken(7) } else { not_taken() };
            p.predict_and_train(42, &info, false, false);
        }
        let before = p.mispredicts();
        for i in 0..100u64 {
            let info = if i % 2 == 0 { taken(7) } else { not_taken() };
            p.predict_and_train(42, &info, false, false);
        }
        assert_eq!(p.mispredicts(), before);
    }

    #[test]
    fn random_direction_mispredicts_often() {
        let mut p = BranchPredictor::new(10, 256, 16);
        let mut x = 0x12345678u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let info = if x >> 63 == 1 { taken(9) } else { not_taken() };
            p.predict_and_train(77, &info, false, false);
        }
        let rate = p.mispredicts() as f64 / p.lookups() as f64;
        assert!(rate > 0.25, "random branches should hurt: {rate}");
    }

    #[test]
    fn calls_and_returns_pair_through_ras() {
        let mut p = BranchPredictor::new(10, 256, 16);
        let call = BranchInfo {
            taken: true,
            conditional: false,
            target: 1000,
        };
        let ret = BranchInfo {
            taken: true,
            conditional: false,
            target: 0,
        };
        // First call misses BTB; afterwards call+ret are perfect.
        p.predict_and_train(5, &call, true, false);
        for _ in 0..50 {
            let c = p.predict_and_train(5, &call, true, false);
            assert!(c.correct);
            let r = p.predict_and_train(1005, &ret, false, true);
            assert!(r.correct);
        }
    }

    #[test]
    fn empty_ras_return_mispredicts() {
        let mut p = BranchPredictor::new(10, 256, 16);
        let ret = BranchInfo {
            taken: true,
            conditional: false,
            target: 0,
        };
        let r = p.predict_and_train(9, &ret, false, true);
        assert!(!r.correct);
        assert_eq!(p.mispredicts(), 1);
    }
}

//! The out-of-order pipeline model.

use crate::cache::MemoryHierarchy;
use crate::npu_iface::{LinkState, NpuAttachment};
use crate::predictor::BranchPredictor;
use crate::{CoreConfig, SimStats};
use approx_ir::{OpClass, TraceEvent, TraceSink};
use npu::NpuSim;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

const FETCH_BUFFER_CAP: usize = 64;
const FEED_HIGH_WATER: usize = 4096;
const STALL_GUARD: u64 = 1_000_000;

/// Process-wide high-water mark of any core's streaming input buffer, in
/// trace events. The sweep driver resets it before a run and reports it in
/// the run report, substantiating that cycle-level simulation never
/// materialises a full trace ([`FEED_HIGH_WATER`] bounds it by design).
static PEAK_TRACE_BUFFER: AtomicU64 = AtomicU64::new(0);

/// The largest streaming input buffer any [`Core`] reached (in events)
/// since the last [`reset_peak_trace_buffer`]. Folded in at
/// [`Core::finish`] time.
pub fn peak_trace_buffer() -> u64 {
    PEAK_TRACE_BUFFER.load(Ordering::Relaxed)
}

/// Resets the process-wide peak trace-buffer high-water mark.
pub fn reset_peak_trace_buffer() {
    PEAK_TRACE_BUFFER.store(0, Ordering::Relaxed);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Dispatched, waiting in the issue queue.
    InIq,
    /// Issued to a functional unit, finishing at the stored cycle.
    Executing(u64),
    /// Result produced; eligible to commit when it reaches the ROB head.
    Done,
}

#[derive(Debug, Clone)]
struct Slot {
    class: OpClass,
    mem_addr: Option<(u64, bool)>,
    /// Producer slots (absolute ROB indices) this instruction waits on:
    /// up to three register sources, plus one for store-to-load or NPU
    /// serialization dependences.
    deps: [Option<u64>; 4],
    /// Load forwarded from an in-flight store (skips the cache).
    forwarded: bool,
    state: SlotState,
}

/// The trace-driven out-of-order core.
///
/// Feed it dynamic instructions (it implements
/// [`TraceSink`](approx_ir::TraceSink), so it can be passed straight to
/// `Interpreter::run_traced`), then call [`finish`](Core::finish) to drain
/// the pipeline and read the final [`SimStats`].
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    stats: SimStats,
    hierarchy: MemoryHierarchy,
    predictor: BranchPredictor,
    npu: NpuAttachment,
    link: LinkState,

    cycle: u64,
    /// Events fed but not yet fetched.
    input: VecDeque<TraceEvent>,
    /// Fetched instructions awaiting dispatch: `(event, dispatch_ready_at)`.
    fetch_buffer: VecDeque<(TraceEvent, u64)>,
    /// In-flight window; `rob_base` is the absolute index of `rob[0]`.
    rob: VecDeque<Slot>,
    rob_base: u64,
    /// Issue queue: absolute indices of waiting slots, in age order.
    iq: Vec<u64>,
    /// Absolute indices finishing execution, ordered by completion cycle.
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Last in-flight writer of each (frame-tagged) register.
    reg_producer: HashMap<u16, u64>,
    /// Youngest in-flight store per word address.
    store_map: HashMap<u64, u64>,
    /// Serialization chain for NPU queue instructions.
    last_npu: Option<u64>,
    /// In-flight load/store queue occupancy.
    lq_used: usize,
    sq_used: usize,
    /// Fetch redirect state.
    fetch_stalled_until: u64,
    fetch_blocked_on: Option<u64>,
    /// Non-pipelined FP unit reservations.
    fp_unit_busy: Vec<u64>,
    last_commit_cycle: u64,
    /// High-water mark of `input` (events fed but not yet fetched).
    input_peak: usize,
}

impl Core {
    /// Creates a core with no NPU attached.
    pub fn new(cfg: CoreConfig) -> Self {
        Core::with_attachment(cfg, NpuAttachment::None)
    }

    /// Creates a core with a pre-configured cycle-accurate NPU. The NPU is
    /// ticked in lockstep with the core; `enq.d` values travel the link in
    /// `cfg.npu_link_latency` cycles each way.
    pub fn with_npu(cfg: CoreConfig, npu: NpuSim) -> Self {
        Core::with_attachment(cfg, NpuAttachment::Cycle(Box::new(npu)))
    }

    /// Creates a core attached to a hypothetical zero-cycle NPU for a
    /// region with `n_inputs`/`n_outputs` (Figure 8's "Core + Ideal NPU").
    pub fn with_ideal_npu(cfg: CoreConfig, n_inputs: usize, n_outputs: usize) -> Self {
        Core::with_attachment(cfg, NpuAttachment::ideal(n_inputs, n_outputs))
    }

    /// Creates a core with an explicit attachment.
    pub fn with_attachment(cfg: CoreConfig, npu: NpuAttachment) -> Self {
        Core {
            hierarchy: MemoryHierarchy::new(cfg.l1d, cfg.l2, cfg.mem_latency),
            predictor: BranchPredictor::new(cfg.gshare_bits, cfg.btb_entries, cfg.ras_entries),
            npu,
            link: LinkState::default(),
            stats: SimStats::default(),
            cycle: 0,
            input: VecDeque::new(),
            fetch_buffer: VecDeque::new(),
            rob: VecDeque::new(),
            rob_base: 0,
            iq: Vec::new(),
            completions: BinaryHeap::new(),
            reg_producer: HashMap::new(),
            store_map: HashMap::new(),
            last_npu: None,
            lq_used: 0,
            sq_used: 0,
            fetch_stalled_until: 0,
            fetch_blocked_on: None,
            fp_unit_busy: vec![0; cfg.fp_units],
            last_commit_cycle: 0,
            input_peak: 0,
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far (final values only after [`finish`](Core::finish)).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The attached NPU's statistics, if a cycle-accurate NPU is attached.
    pub fn npu_stats(&self) -> Option<npu::NpuStats> {
        match &self.npu {
            NpuAttachment::Cycle(sim) => Some(*sim.stats()),
            _ => None,
        }
    }

    /// The attached NPU's per-invocation latency distribution (simulated
    /// cycles), if a cycle-accurate NPU is attached.
    pub fn npu_invocation_cycles(&self) -> Option<telemetry::Histogram> {
        match &self.npu {
            NpuAttachment::Cycle(sim) => Some(sim.invocation_cycles().clone()),
            _ => None,
        }
    }

    /// Feeds one dynamically executed instruction. The core advances its
    /// pipeline as needed to keep its internal buffers bounded, so memory
    /// use stays constant for arbitrarily long traces.
    pub fn feed(&mut self, ev: TraceEvent) {
        self.input.push_back(ev);
        self.input_peak = self.input_peak.max(self.input.len());
        while self.input.len() >= FEED_HIGH_WATER {
            self.tick();
        }
    }

    /// High-water mark of this core's streaming input buffer, in events.
    /// Bounded by the feed back-pressure threshold regardless of trace
    /// length.
    pub fn input_buffer_peak(&self) -> usize {
        self.input_peak
    }

    /// Drains the pipeline and returns the final statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a very long time) —
    /// that indicates a protocol bug, e.g. a `deq.d` with no matching NPU
    /// output.
    pub fn finish(&mut self) -> SimStats {
        while !self.input.is_empty() || !self.fetch_buffer.is_empty() || !self.rob.is_empty() {
            self.tick();
            assert!(
                self.cycle - self.last_commit_cycle < STALL_GUARD,
                "pipeline deadlock at cycle {}: rob={} iq={} head={:?}",
                self.cycle,
                self.rob.len(),
                self.iq.len(),
                self.rob.front().map(|s| (s.class, s.state)),
            );
        }
        self.stats.cycles = self.cycle;
        self.stats.bp_lookups = self.predictor.lookups();
        self.stats.bp_mispredicts = self.predictor.mispredicts();
        self.stats.l1d_hits = self.hierarchy.l1d().hits();
        self.stats.l1d_misses = self.hierarchy.l1d().misses();
        self.stats.l2_hits = self.hierarchy.l2().hits();
        self.stats.l2_misses = self.hierarchy.l2().misses();
        self.stats.mem_accesses = self.hierarchy.mem_accesses();
        PEAK_TRACE_BUFFER.fetch_max(self.input_peak as u64, Ordering::Relaxed);
        telemetry::emit(telemetry::Level::Info, "uarch::core", || {
            telemetry::EventKind::SimDone {
                cycles: self.stats.cycles,
                committed: self.stats.committed,
            }
        });
        self.stats
    }

    // ------------------------------------------------------------------

    fn slot(&self, abs: u64) -> Option<&Slot> {
        if abs < self.rob_base {
            return None; // already committed
        }
        self.rob.get((abs - self.rob_base) as usize)
    }

    fn dep_ready(&self, dep: u64) -> bool {
        match self.slot(dep) {
            None => true, // committed
            Some(s) => s.state == SlotState::Done,
        }
    }

    fn tick(&mut self) {
        self.cycle += 1;
        let now = self.cycle;
        self.npu_tick(now);
        self.writeback(now);
        self.commit(now);
        self.issue(now);
        self.dispatch(now);
        self.fetch(now);
    }

    /// Delivers in-flight enqueues, ticks the NPU one cycle, and records
    /// the core-side visibility time of any new outputs.
    fn npu_tick(&mut self, now: u64) {
        let NpuAttachment::Cycle(sim) = &mut self.npu else {
            return;
        };
        while let Some(&(at, v)) = self.link.enq_in_flight.front() {
            if at <= now && sim.input_has_space() {
                sim.enqueue_input(v);
                sim.commit_inputs(1);
                self.link.enq_in_flight.pop_front();
            } else {
                break;
            }
        }
        sim.tick();
        let produced = sim.stats().outputs_produced;
        while self.link.outputs_seen < produced {
            self.link
                .output_visible_at
                .push_back(now + self.cfg.npu_link_latency);
            self.link.outputs_seen += 1;
        }
    }

    fn writeback(&mut self, now: u64) {
        while let Some(&Reverse((done_at, abs))) = self.completions.peek() {
            if done_at > now {
                break;
            }
            self.completions.pop();
            if let Some(idx) = abs.checked_sub(self.rob_base) {
                if let Some(slot) = self.rob.get_mut(idx as usize) {
                    slot.state = SlotState::Done;
                }
            }
            // A resolving mispredicted branch un-blocks fetch after the
            // front-end refill penalty.
            if self.fetch_blocked_on == Some(abs) {
                self.fetch_blocked_on = None;
                self.fetch_stalled_until = now + self.cfg.mispredict_refill;
                if telemetry::enabled(telemetry::Level::Trace) {
                    telemetry::emit(telemetry::Level::Trace, "uarch::core", || {
                        telemetry::EventKind::BranchMispredict { cycle: now }
                    });
                }
            }
        }
    }

    fn commit(&mut self, now: u64) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != SlotState::Done {
                break;
            }
            let slot = self.rob.pop_front().expect("head exists");
            let abs = self.rob_base;
            self.rob_base += 1;
            self.last_commit_cycle = now;
            self.stats.committed += 1;
            match slot.class {
                OpClass::IntAlu => self.stats.int_ops += 1,
                OpClass::FpAdd => self.stats.fp_add_ops += 1,
                OpClass::FpMul => self.stats.fp_mul_ops += 1,
                OpClass::FpDiv => self.stats.fp_div_ops += 1,
                OpClass::FpSqrt => self.stats.fp_sqrt_ops += 1,
                OpClass::FpTrig => self.stats.fp_trig_ops += 1,
                OpClass::Load => self.stats.loads += 1,
                OpClass::Store => self.stats.stores += 1,
                OpClass::Branch | OpClass::Jump | OpClass::Call | OpClass::Ret => {
                    self.stats.branches += 1
                }
                OpClass::NpuEnqD | OpClass::NpuDeqD | OpClass::NpuEnqC | OpClass::NpuDeqC => {
                    self.stats.npu_queue_ops += 1
                }
            }
            match slot.class {
                OpClass::Load => self.lq_used -= 1,
                OpClass::Store => {
                    self.sq_used -= 1;
                    // The store drains from the store queue to the cache at
                    // commit (write-buffer semantics: latency is hidden).
                    if let Some((addr, _)) = slot.mem_addr {
                        self.hierarchy.access(addr);
                        // Drop the disambiguation entry unless a younger
                        // in-flight store to the same word replaced it.
                        if self.store_map.get(&(addr / 4)) == Some(&abs) {
                            self.store_map.remove(&(addr / 4));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn issue(&mut self, now: u64) {
        let mut int_tokens = self.cfg.int_alus;
        let mut fp_tokens = self.cfg.fp_units;
        let mut load_tokens = self.cfg.load_units;
        let mut store_tokens = self.cfg.store_units;
        let mut budget = self.cfg.issue_width;
        let mut issued_positions: Vec<usize> = Vec::new();

        for pos in 0..self.iq.len() {
            if budget == 0 {
                break;
            }
            let abs = self.iq[pos];
            let idx = (abs - self.rob_base) as usize;
            let deps = self.rob[idx].deps;
            if !deps.iter().flatten().all(|&d| self.dep_ready(d)) {
                continue;
            }
            let class = self.rob[idx].class;
            // Functional unit / structural checks.
            let lat = self.cfg.latencies;
            let done_at = match class {
                OpClass::IntAlu => {
                    if int_tokens == 0 {
                        continue;
                    }
                    int_tokens -= 1;
                    now + lat.int_alu
                }
                OpClass::FpAdd | OpClass::FpMul => {
                    if fp_tokens == 0 {
                        continue;
                    }
                    fp_tokens -= 1;
                    now + if class == OpClass::FpAdd {
                        lat.fp_add
                    } else {
                        lat.fp_mul
                    }
                }
                OpClass::FpDiv | OpClass::FpSqrt | OpClass::FpTrig => {
                    if fp_tokens == 0 {
                        continue;
                    }
                    let latency = match class {
                        OpClass::FpDiv => lat.fp_div,
                        OpClass::FpSqrt => lat.fp_sqrt,
                        _ => lat.fp_trig,
                    };
                    // Unpipelined: needs a unit whose divider is free.
                    let Some(unit) = self
                        .fp_unit_busy
                        .iter()
                        .position(|&busy_until| busy_until <= now)
                    else {
                        continue;
                    };
                    fp_tokens -= 1;
                    self.fp_unit_busy[unit] = now + latency;
                    now + latency
                }
                OpClass::Load => {
                    if load_tokens == 0 {
                        continue;
                    }
                    load_tokens -= 1;
                    if self.rob[idx].forwarded {
                        now + 1 // store-to-load forwarding
                    } else {
                        let addr = self.rob[idx].mem_addr.expect("load has address").0;
                        now + self.hierarchy.access(addr)
                    }
                }
                OpClass::Store => {
                    if store_tokens == 0 {
                        continue;
                    }
                    store_tokens -= 1;
                    now + 1 // address/data into the store queue
                }
                OpClass::Branch | OpClass::Jump | OpClass::Call | OpClass::Ret => {
                    if int_tokens == 0 {
                        continue;
                    }
                    int_tokens -= 1;
                    now + lat.branch
                }
                OpClass::NpuEnqD => {
                    if !self.npu_enq_ready() {
                        continue;
                    }
                    if int_tokens == 0 {
                        continue;
                    }
                    int_tokens -= 1;
                    self.npu_do_enq(now);
                    now + lat.npu_queue
                }
                OpClass::NpuDeqD => {
                    if !self.npu_deq_ready(now) {
                        continue;
                    }
                    if int_tokens == 0 {
                        continue;
                    }
                    int_tokens -= 1;
                    self.npu_do_deq();
                    now + lat.npu_queue
                }
                OpClass::NpuEnqC | OpClass::NpuDeqC => {
                    // Non-speculative configuration traffic: one word per
                    // cycle through the config FIFO.
                    if int_tokens == 0 {
                        continue;
                    }
                    int_tokens -= 1;
                    now + lat.npu_queue
                }
            };
            self.rob[idx].state = SlotState::Executing(done_at);
            self.completions.push(Reverse((done_at, abs)));
            issued_positions.push(pos);
            budget -= 1;
        }
        // Remove issued entries (back to front to keep positions valid).
        for &pos in issued_positions.iter().rev() {
            self.iq.remove(pos);
        }
    }

    fn npu_enq_ready(&self) -> bool {
        match &self.npu {
            NpuAttachment::None => true,
            NpuAttachment::Cycle(sim) => {
                sim.input_fifo_len() + self.link.enq_in_flight.len() < sim.input_fifo_capacity()
            }
            NpuAttachment::Ideal { .. } => true,
        }
    }

    fn npu_do_enq(&mut self, now: u64) {
        let link = self.cfg.npu_link_latency;
        match &mut self.npu {
            NpuAttachment::None => {}
            NpuAttachment::Cycle(_) => {
                // Timing model: payload values are irrelevant (functional
                // results come from the interpreter's own NPU port).
                self.link.enq_in_flight.push_back((now + link, 0.5));
            }
            NpuAttachment::Ideal {
                n_inputs,
                n_outputs,
                pending_inputs,
                ready_outputs: _,
            } => {
                *pending_inputs += 1;
                if *pending_inputs == *n_inputs {
                    *pending_inputs = 0;
                    for _ in 0..*n_outputs {
                        // Zero compute cycles; only the link round trip.
                        self.link.output_visible_at.push_back(now + 2 * link);
                    }
                }
            }
        }
    }

    fn npu_deq_ready(&self, now: u64) -> bool {
        match &self.npu {
            NpuAttachment::None => true,
            _ => self
                .link
                .output_visible_at
                .front()
                .is_some_and(|&at| at <= now),
        }
    }

    fn npu_do_deq(&mut self) {
        match &mut self.npu {
            NpuAttachment::None => {}
            NpuAttachment::Cycle(sim) => {
                self.link.output_visible_at.pop_front();
                sim.dequeue_output();
                sim.commit_outputs(1);
            }
            NpuAttachment::Ideal { .. } => {
                self.link.output_visible_at.pop_front();
            }
        }
    }

    fn dispatch(&mut self, now: u64) {
        for _ in 0..self.cfg.dispatch_width {
            let Some(&(ev, ready_at)) = self.fetch_buffer.front() else {
                break;
            };
            if ready_at > now {
                break;
            }
            if self.rob.len() >= self.cfg.rob_entries {
                self.stats.rob_full_stalls += 1;
                break;
            }
            if self.iq.len() >= self.cfg.iq_entries {
                self.stats.iq_full_stalls += 1;
                break;
            }
            match ev.class {
                OpClass::Load if self.lq_used >= self.cfg.lq_entries => {
                    self.stats.lsq_full_stalls += 1;
                    break;
                }
                OpClass::Store if self.sq_used >= self.cfg.sq_entries => {
                    self.stats.lsq_full_stalls += 1;
                    break;
                }
                _ => {}
            }
            self.fetch_buffer.pop_front();
            let abs = self.rob_base + self.rob.len() as u64;

            let mut deps: [Option<u64>; 4] = [None; 4];
            for (i, src) in ev.srcs.iter().enumerate() {
                if let Some(reg) = src {
                    if let Some(&producer) = self.reg_producer.get(reg) {
                        if producer >= self.rob_base {
                            deps[i] = Some(producer);
                        }
                    }
                }
            }
            let mut forwarded = false;
            match ev.class {
                OpClass::Load => {
                    self.lq_used += 1;
                    let addr = ev.mem.expect("load has mem info").addr;
                    if let Some(&store) = self.store_map.get(&(addr / 4)) {
                        if store >= self.rob_base {
                            deps[3] = Some(store);
                            forwarded = true;
                        }
                    }
                }
                OpClass::Store => {
                    self.sq_used += 1;
                    let addr = ev.mem.expect("store has mem info").addr;
                    self.store_map.insert(addr / 4, abs);
                }
                c if c.is_npu_queue() => {
                    // "The renaming logic implicitly considers every NPU
                    // instruction to read and write a designated dummy
                    // architectural register" — total order among them.
                    if let Some(prev) = self.last_npu {
                        if prev >= self.rob_base {
                            deps[3] = Some(prev);
                        }
                    }
                    self.last_npu = Some(abs);
                }
                _ => {}
            }
            if let Some(dst) = ev.dst {
                self.reg_producer.insert(dst, abs);
            }
            self.rob.push_back(Slot {
                class: ev.class,
                mem_addr: ev.mem.map(|m| (m.addr, m.is_store)),
                deps,
                forwarded,
                state: SlotState::InIq,
            });
            self.iq.push(abs);
        }
    }

    fn fetch(&mut self, now: u64) {
        if self.fetch_blocked_on.is_some() || self.fetch_stalled_until > now {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_buffer.len() >= FETCH_BUFFER_CAP {
                break;
            }
            let Some(ev) = self.input.pop_front() else {
                break;
            };
            let dispatch_at = now + self.cfg.frontend_depth;
            let mut end_group = false;
            if let Some(info) = ev.branch {
                let prediction = self.predictor.predict_and_train(
                    ev.pc,
                    &info,
                    ev.class == OpClass::Call,
                    ev.class == OpClass::Ret,
                );
                if !prediction.correct {
                    // Block fetch until this branch resolves.
                    self.fetch_blocked_on = Some(
                        self.rob_base + self.rob.len() as u64 + self.fetch_buffer.len() as u64,
                    );
                    end_group = true;
                } else if info.taken {
                    // Correctly predicted taken: redirect still ends the
                    // fetch group.
                    end_group = true;
                }
            }
            self.fetch_buffer.push_back((ev, dispatch_at));
            if end_group {
                break;
            }
        }
    }
}

impl TraceSink for Core {
    fn event(&mut self, ev: &TraceEvent) {
        self.feed(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_ir::{BranchInfo, MemAccess};

    fn alu(pc: u64, srcs: [Option<u16>; 3], dst: Option<u16>) -> TraceEvent {
        TraceEvent::simple(pc, OpClass::IntAlu, srcs, dst)
    }

    fn run(events: Vec<TraceEvent>) -> SimStats {
        let mut core = Core::new(CoreConfig::penryn_like());
        for ev in events {
            core.feed(ev);
        }
        core.finish()
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let events: Vec<TraceEvent> = (0..4000)
            .map(|i| alu(i % 64, [None; 3], Some((i % 50 + 10) as u16)))
            .collect();
        let stats = run(events);
        assert_eq!(stats.committed, 4000);
        // Bound by 3 integer ALUs but also fetch width 4; expect ~3 IPC.
        assert!(stats.ipc() > 2.0, "ipc = {}", stats.ipc());
    }

    #[test]
    fn dependent_chain_is_serial() {
        // Each op reads the previous op's destination.
        let events: Vec<TraceEvent> = (0..2000)
            .map(|i| alu(i % 64, [Some(5), None, None], Some(5)))
            .collect();
        let stats = run(events);
        // 1-cycle ALU chain: IPC can approach but not exceed ~1.
        assert!(stats.ipc() < 1.2, "ipc = {}", stats.ipc());
    }

    #[test]
    fn fp_chain_is_slower_than_int_chain() {
        let fp: Vec<TraceEvent> = (0..1000)
            .map(|i| TraceEvent::simple(i % 64, OpClass::FpMul, [Some(5), None, None], Some(5)))
            .collect();
        let int: Vec<TraceEvent> = (0..1000)
            .map(|i| alu(i % 64, [Some(5), None, None], Some(5)))
            .collect();
        let fp_stats = run(fp);
        let int_stats = run(int);
        assert!(
            fp_stats.cycles > 4 * int_stats.cycles,
            "fp {} vs int {}",
            fp_stats.cycles,
            int_stats.cycles
        );
    }

    #[test]
    fn cold_loads_pay_memory_latency() {
        // Strided loads, each touching a fresh line, no reuse.
        let events: Vec<TraceEvent> = (0..500)
            .map(|i| TraceEvent {
                pc: i % 16,
                class: OpClass::Load,
                srcs: [Some(1), None, None],
                dst: Some(2),
                mem: Some(MemAccess {
                    addr: i * 64,
                    is_store: false,
                }),
                branch: None,
            })
            .collect();
        let stats = run(events);
        assert_eq!(stats.loads, 500);
        assert!(stats.l1d_misses >= 499, "misses = {}", stats.l1d_misses);
        assert!(stats.mem_accesses >= 499);
    }

    #[test]
    fn cached_loads_are_fast() {
        let events: Vec<TraceEvent> = (0..2000)
            .map(|i| TraceEvent {
                pc: i % 16,
                class: OpClass::Load,
                srcs: [Some(1), None, None],
                dst: Some((i % 40 + 8) as u16),
                mem: Some(MemAccess {
                    addr: (i % 8) * 64,
                    is_store: false,
                }),
                branch: None,
            })
            .collect();
        let stats = run(events);
        assert!(stats.l1d_miss_rate() < 0.02);
        assert!(stats.ipc() > 1.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn store_to_load_forwarding_creates_dependence() {
        // store to X; load from X; repeat. The load must wait for the
        // store but forwards quickly.
        let mut events = Vec::new();
        for i in 0..500u64 {
            events.push(TraceEvent {
                pc: 0,
                class: OpClass::Store,
                srcs: [Some(1), Some(2), None],
                dst: None,
                mem: Some(MemAccess {
                    addr: 512,
                    is_store: true,
                }),
                branch: None,
            });
            events.push(TraceEvent {
                pc: 1,
                class: OpClass::Load,
                srcs: [Some(2), None, None],
                dst: Some(3),
                mem: Some(MemAccess {
                    addr: 512,
                    is_store: false,
                }),
                branch: None,
            });
            events.push(alu(2 + (i % 4), [Some(3), None, None], Some(1)));
        }
        let stats = run(events);
        assert_eq!(stats.committed, 1500);
        // Forwarded loads never touch the cache: only the stores do.
        assert_eq!(stats.l1d_hits + stats.l1d_misses, 500);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // A data-dependent pseudo-random branch direction stresses the
        // predictor; compare against an always-taken loop branch.
        let mut x = 99u64;
        let mut random = Vec::new();
        let mut biased = Vec::new();
        for i in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let rand_taken = (x >> 62) & 1 == 1;
            random.push(TraceEvent {
                pc: 7,
                class: OpClass::Branch,
                srcs: [Some(1), None, None],
                dst: None,
                mem: None,
                branch: Some(BranchInfo {
                    taken: rand_taken,
                    conditional: true,
                    target: 2,
                }),
            });
            random.push(alu(8 + (i % 8), [None; 3], Some(4)));
            biased.push(TraceEvent {
                pc: 7,
                class: OpClass::Branch,
                srcs: [Some(1), None, None],
                dst: None,
                mem: None,
                branch: Some(BranchInfo {
                    taken: false,
                    conditional: true,
                    target: 2,
                }),
            });
            biased.push(alu(8 + (i % 8), [None; 3], Some(4)));
        }
        let r = run(random);
        let b = run(biased);
        assert!(r.bp_mispredicts > 500, "mispredicts = {}", r.bp_mispredicts);
        assert!(
            r.cycles > b.cycles * 2,
            "random {} vs biased {}",
            r.cycles,
            b.cycles
        );
    }

    #[test]
    fn npu_instructions_serialize_in_order() {
        // enq.d x4 with no NPU attached still execute one per cycle in
        // order (dummy-register serialization).
        let events: Vec<TraceEvent> = (0..100)
            .map(|i| TraceEvent::simple(i % 8, OpClass::NpuEnqD, [Some(1), None, None], None))
            .collect();
        let stats = run(events);
        assert_eq!(stats.npu_queue_ops, 100);
        // Serialized at 1/cycle: at least ~100 cycles.
        assert!(stats.cycles >= 100);
    }

    #[test]
    fn stats_accumulate_by_class() {
        let events = vec![
            alu(0, [None; 3], Some(1)),
            TraceEvent::simple(1, OpClass::FpDiv, [Some(1), None, None], Some(2)),
            TraceEvent::simple(2, OpClass::FpSqrt, [Some(2), None, None], Some(3)),
            TraceEvent::simple(3, OpClass::FpTrig, [Some(3), None, None], Some(4)),
        ];
        let stats = run(events);
        assert_eq!(stats.int_ops, 1);
        assert_eq!(stats.fp_div_ops, 1);
        assert_eq!(stats.fp_sqrt_ops, 1);
        assert_eq!(stats.fp_trig_ops, 1);
        assert_eq!(stats.committed, 4);
    }
}

//! How the core's queue instructions connect to an NPU model.

use npu::NpuSim;
use std::collections::VecDeque;

/// What sits on the other side of the `enq`/`deq` queues.
#[derive(Debug)]
pub enum NpuAttachment {
    /// No NPU: queue instructions behave as 1-cycle no-ops (useful for
    /// pure-CPU baselines whose traces contain no queue instructions
    /// anyway).
    None,
    /// The cycle-accurate NPU, ticked in lockstep with the core (paper:
    /// "the NPU operates at the same frequency and voltage as the main
    /// core").
    Cycle(Box<NpuSim>),
    /// A hypothetical zero-latency, zero-energy NPU (the paper's
    /// "Core + Ideal NPU" bars in Figure 8): outputs become available the
    /// cycle the invocation's last input arrives.
    Ideal {
        /// Inputs per invocation.
        n_inputs: usize,
        /// Outputs per invocation.
        n_outputs: usize,
        /// Inputs received toward the current invocation.
        pending_inputs: usize,
        /// Outputs ready to dequeue.
        ready_outputs: usize,
    },
}

impl NpuAttachment {
    /// An ideal NPU for a region with the given arity.
    pub fn ideal(n_inputs: usize, n_outputs: usize) -> Self {
        NpuAttachment::Ideal {
            n_inputs,
            n_outputs,
            pending_inputs: 0,
            ready_outputs: 0,
        }
    }
}

/// In-flight enqueue values traversing the CPU→NPU link, plus the
/// core-side availability times of NPU outputs (modelling the n-cycle
/// NPU→CPU link of Figure 10).
#[derive(Debug, Default)]
pub struct LinkState {
    /// `(deliver_at_cycle, value)` for enqueues still on the wire.
    pub enq_in_flight: VecDeque<(u64, f32)>,
    /// Core-side cycle at which each not-yet-dequeued NPU output becomes
    /// visible.
    pub output_visible_at: VecDeque<u64>,
    /// Outputs the NPU has pushed so far (to detect new ones after a tick).
    pub outputs_seen: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_attachment_constructor() {
        let a = NpuAttachment::ideal(9, 1);
        match a {
            NpuAttachment::Ideal {
                n_inputs,
                n_outputs,
                pending_inputs,
                ready_outputs,
            } => {
                assert_eq!((n_inputs, n_outputs), (9, 1));
                assert_eq!((pending_inputs, ready_outputs), (0, 0));
            }
            _ => panic!("wrong variant"),
        }
    }
}

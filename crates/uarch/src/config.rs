//! Core configuration (paper Table 2, left column).

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Execution latencies per operation class, in cycles.
///
/// `FpTrig` stands for a libm `sin`/`cos` call, which the paper's
/// instruction statistics treat as a black box; its latency approximates a
/// vendor-library implementation on a Penryn-class core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Integer ALU ops, moves, conversions.
    pub int_alu: u64,
    /// FP add/sub/compare/min/max.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide (unpipelined).
    pub fp_div: u64,
    /// FP square root (unpipelined).
    pub fp_sqrt: u64,
    /// libm trigonometry stand-in (unpipelined).
    pub fp_trig: u64,
    /// Branch/jump/call/return resolution.
    pub branch: u64,
    /// NPU queue instruction base latency (the per-instruction cycle of
    /// pipelined communication; the link adds `npu_link_latency` on top).
    pub npu_queue: u64,
}

impl Default for OpLatencies {
    fn default() -> Self {
        OpLatencies {
            int_alu: 1,
            fp_add: 3,
            fp_mul: 5,
            fp_div: 24,
            fp_sqrt: 30,
            fp_trig: 60,
            branch: 1,
            npu_queue: 1,
        }
    }
}

/// Microarchitectural parameters of the simulated core.
///
/// [`CoreConfig::penryn_like`] reproduces the paper's Table 2. Entries the
/// OCR of the paper leaves ambiguous are noted on each field; all are
/// plain data and can be overridden.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (Table 2: 4).
    pub fetch_width: usize,
    /// Instructions dispatched into the ROB/IQ per cycle.
    pub dispatch_width: usize,
    /// Instructions issued to functional units per cycle (Table 2: 6).
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries (Table 2: 96).
    pub rob_entries: usize,
    /// Issue queue entries (Table 2: 32).
    pub iq_entries: usize,
    /// Load queue entries (Table 2: 48).
    pub lq_entries: usize,
    /// Store queue entries (Table 2: 48).
    pub sq_entries: usize,
    /// Integer ALUs (Table 2: 3).
    pub int_alus: usize,
    /// Floating-point units (Table 2: 2).
    pub fp_units: usize,
    /// Load ports (Table 2: 2).
    pub load_units: usize,
    /// Store ports (Table 2: 2).
    pub store_units: usize,
    /// Front-end refill penalty after a branch misprediction resolves
    /// (pipeline depth from fetch to rename).
    pub mispredict_refill: u64,
    /// Pipeline depth from fetch to dispatch (decode/rename stages).
    pub frontend_depth: u64,
    /// gshare history bits (models the 48 KB tournament predictor).
    pub gshare_bits: u32,
    /// Branch target buffer entries (Table 2: 1024 sets x 4 ways).
    pub btb_entries: usize,
    /// Return address stack entries (Table 2: 64).
    pub ras_entries: usize,
    /// L1 data cache (Table 2: 32 KB, 64 B lines, 8-way, 3-cycle hit —
    /// the OCR shows "cycles"; 3 matches Penryn).
    pub l1d: CacheConfig,
    /// Unified L2 (Table 2: 2 MB, 64 B, 8-way, 12-cycle hit — OCR "2").
    pub l2: CacheConfig,
    /// Main memory latency in cycles (Table 2: "5 ns (4 cycles)" in the
    /// OCR; read as 50 ns ≈ 104 cycles at 2.08 GHz).
    pub mem_latency: u64,
    /// One-way CPU↔NPU link latency in cycles (Figure 10 sweeps 1–16).
    pub npu_link_latency: u64,
    /// Execution latencies.
    pub latencies: OpLatencies,
    /// Core clock in GHz (paper: the 2080 MHz / 0.9 V operating point of
    /// Galal et al.'s energy study).
    pub frequency_ghz: f64,
}

impl CoreConfig {
    /// The paper's Table 2 configuration.
    pub fn penryn_like() -> Self {
        CoreConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 6,
            commit_width: 4,
            rob_entries: 96,
            iq_entries: 32,
            lq_entries: 48,
            sq_entries: 48,
            int_alus: 3,
            fp_units: 2,
            load_units: 2,
            store_units: 2,
            mispredict_refill: 8,
            frontend_depth: 4,
            gshare_bits: 14,
            btb_entries: 4096,
            ras_entries: 64,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                line_bytes: 64,
                ways: 8,
                hit_latency: 12,
            },
            mem_latency: 104,
            npu_link_latency: 1,
            latencies: OpLatencies::default(),
            frequency_ghz: 2.08,
        }
    }

    /// The Table 2 configuration with a different CPU↔NPU link latency
    /// (Figure 10's sensitivity axis).
    pub fn with_npu_link_latency(latency: u64) -> Self {
        CoreConfig {
            npu_link_latency: latency,
            ..CoreConfig::penryn_like()
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::penryn_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penryn_matches_table_2() {
        let c = CoreConfig::penryn_like();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.rob_entries, 96);
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.lq_entries, 48);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.npu_link_latency, 1);
    }

    #[test]
    fn link_latency_override() {
        assert_eq!(CoreConfig::with_npu_link_latency(16).npu_link_latency, 16);
    }
}

//! Set-associative LRU cache models and the two-level hierarchy.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags only — no data storage; the simulator needs hit/miss decisions and
/// access counts, not contents.
#[derive(Debug, Clone)]
pub struct CacheModel {
    config: CacheConfig,
    /// `sets[set]` holds up to `ways` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl CacheModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count.
    pub fn new(config: CacheConfig) -> Self {
        let n_lines = config.size_bytes / config.line_bytes;
        let n_sets = n_lines / config.ways;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.line_bytes.is_power_of_two());
        CacheModel {
            sets: vec![Vec::with_capacity(config.ways); n_sets],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            hits: 0,
            misses: 0,
            config,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `addr`; returns `true` on hit. Allocates on miss
    /// (write-allocate for stores too).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.push(t);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.config.ways {
                ways.remove(0);
            }
            ways.push(tag);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The L1D → L2 → memory hierarchy the core's loads and stores traverse.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: CacheModel,
    l2: CacheModel,
    mem_latency: u64,
    mem_accesses: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from per-level configs.
    pub fn new(l1d: CacheConfig, l2: CacheConfig, mem_latency: u64) -> Self {
        MemoryHierarchy {
            l1d: CacheModel::new(l1d),
            l2: CacheModel::new(l2),
            mem_latency,
            mem_accesses: 0,
        }
    }

    /// Performs an access and returns its total latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        let mut latency = self.l1d.config().hit_latency;
        if !self.l1d.access(addr) {
            latency += self.l2.config().hit_latency;
            if !self.l2.access(addr) {
                latency += self.mem_latency;
                self.mem_accesses += 1;
            }
        }
        latency
    }

    /// L1 data cache statistics view.
    pub fn l1d(&self) -> &CacheModel {
        &self.l1d
    }

    /// L2 statistics view.
    pub fn l2(&self) -> &CacheModel {
        &self.l2
    }

    /// DRAM accesses so far.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheModel {
        CacheModel::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            hit_latency: 3,
        }) // 4 sets x 2 ways
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x44)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines in the same set (set stride = 4 sets * 64 B = 256 B).
        c.access(0x000);
        c.access(0x100);
        c.access(0x000); // touch A so B is LRU
        c.access(0x200); // evicts B
        assert!(c.access(0x000), "A should still be resident");
        assert!(!c.access(0x100), "B should have been evicted");
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = MemoryHierarchy::new(
            CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                ways: 2,
                hit_latency: 3,
            },
            CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 4,
                hit_latency: 12,
            },
            104,
        );
        assert_eq!(h.access(0x1000), 3 + 12 + 104); // cold: all levels miss
        assert_eq!(h.access(0x1000), 3); // L1 hit
        assert_eq!(h.mem_accesses(), 1);
    }

    #[test]
    fn l2_catches_l1_conflict_evictions() {
        let mut h = MemoryHierarchy::new(
            CacheConfig {
                size_bytes: 128,
                line_bytes: 64,
                ways: 1,
                hit_latency: 3,
            }, // 2 sets, direct mapped
            CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 4,
                hit_latency: 12,
            },
            104,
        );
        h.access(0x000);
        h.access(0x080); // evicts 0x000 from L1 (same set), lands in L2
        assert_eq!(h.access(0x000), 3 + 12); // L1 miss, L2 hit
    }
}

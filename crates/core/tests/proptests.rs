//! Property-based tests for the Parrot transformation's building blocks.

use ann::{Mlp, Normalizer, Topology};
use approx_ir::{Inst, Interpreter, NpuPort, NullSink, Program};
use npu::NpuConfig;
use parrot::codegen::{build_config_loader, build_invocation_stub};
use parrot::{quality, RangeGuard};
use proptest::prelude::*;

proptest! {
    /// The invocation stub always contains exactly n enq.d, m deq.d, and
    /// one ret, in that order.
    #[test]
    fn stub_structure_is_exact(n_in in 1usize..32, n_out in 1usize..16) {
        let stub = build_invocation_stub(n_in, n_out);
        prop_assert_eq!(stub.len(), n_in + n_out + 1);
        for (i, inst) in stub.insts().iter().enumerate() {
            if i < n_in {
                prop_assert!(matches!(inst, Inst::EnqD { .. }), "slot {i}");
            } else if i < n_in + n_out {
                prop_assert!(matches!(inst, Inst::DeqD { .. }), "slot {i}");
            } else {
                prop_assert!(matches!(inst, Inst::Ret { .. }), "last slot must be ret");
            }
        }
    }

    /// Config loader streams decode back to the exact configuration for
    /// arbitrary networks and normalization ranges.
    #[test]
    fn loader_round_trips_any_config(
        inputs in 1usize..8,
        hidden in 1usize..12,
        outputs in 1usize..6,
        seed in 0u64..500,
        lo in -50.0f32..50.0,
        width in 0.1f32..100.0,
    ) {
        let t = Topology::new(vec![inputs, hidden, outputs]).unwrap();
        let config = NpuConfig::new(
            Mlp::seeded(t, seed),
            Normalizer::new(vec![(lo, lo + width); inputs]),
            Normalizer::new(vec![(lo, lo + width); outputs]),
        );
        struct Recorder(Vec<u32>);
        impl NpuPort for Recorder {
            fn enq_config(&mut self, w: u32) {
                self.0.push(w);
            }
            fn deq_config(&mut self) -> u32 { 0 }
            fn enq_data(&mut self, _v: f32) {}
            fn deq_data(&mut self) -> f32 { 0.0 }
        }
        let mut program = Program::new();
        let loader = program.add_function(build_config_loader(&config));
        let mut recorder = Recorder(Vec::new());
        let mut sink = NullSink;
        Interpreter::new(&program)
            .run_full(loader, &[], &mut sink, Some(&mut recorder))
            .unwrap();
        prop_assert_eq!(NpuConfig::decode(&recorder.0).unwrap(), config);
    }

    /// The range guard admits exactly the (widened) box.
    #[test]
    fn guard_is_a_box_predicate(
        lo in -10.0f32..10.0,
        width in 0.1f32..10.0,
        tol in 0.0f32..0.5,
        probe in -30.0f32..30.0,
    ) {
        let hi = lo + width;
        let guard = RangeGuard::new(vec![(lo, hi)], tol);
        let slack = width * tol;
        let inside = probe >= lo - slack && probe <= hi + slack;
        prop_assert_eq!(guard.admits(&[probe]), inside);
    }

    /// The error CDF is monotone non-decreasing and reaches 1 at the max
    /// observed error.
    #[test]
    fn error_cdf_is_monotone(errors in proptest::collection::vec(0.0f64..2.0, 1..100)) {
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        let cdf = quality::ErrorCdf::from_errors(errors);
        let mut prev = 0.0;
        for k in 0..=20 {
            let x = 2.0 * k as f64 / 20.0;
            let y = cdf.fraction_below(x);
            prop_assert!(y >= prev, "CDF decreased at {x}");
            prev = y;
        }
        prop_assert_eq!(cdf.fraction_below(max), 1.0);
    }

    /// Mean relative error is translation-detecting: scaling the approx
    /// away from the reference increases the metric.
    #[test]
    fn mre_grows_with_distortion(
        values in proptest::collection::vec(0.5f32..10.0, 1..50),
        distortion in 1.01f32..3.0,
    ) {
        let distorted: Vec<f32> = values.iter().map(|v| v * distortion).collect();
        let more: Vec<f32> = values.iter().map(|v| v * distortion * 1.5).collect();
        let e1 = quality::mean_relative_error(&values, &distorted, 1e-6);
        let e2 = quality::mean_relative_error(&values, &more, 1e-6);
        prop_assert!(e1 > 0.0);
        prop_assert!(e2 > e1);
        prop_assert_eq!(quality::mean_relative_error(&values, &values, 1e-6), 0.0);
    }

    /// image_rmse is a scaled L2 metric: symmetric and zero iff equal.
    #[test]
    fn image_rmse_is_symmetric(
        a in proptest::collection::vec(0.0f32..1.0, 1..64),
        seed in 0u64..100,
    ) {
        let b: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, &v)| (v + ((seed + i as u64) % 7) as f32 * 0.01).min(1.0))
            .collect();
        let ab = quality::image_rmse(&a, &b, 1.0);
        let ba = quality::image_rmse(&b, &a, 1.0);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert_eq!(quality::image_rmse(&a, &a, 1.0), 0.0);
    }
}

//! Code generation (paper Section 4.3): the NPU configuration loader and
//! the invocation stub that replaces the original function.

use approx_ir::{Function, FunctionBuilder};
use npu::NpuConfig;

/// Builds the *invocation stub*: a function with the same `f32` arity as
/// the original region whose body is `enq.d` for every input followed by
/// `deq.d` for every output (paper Figure 2c).
///
/// The transformed program calls this function wherever it used to call
/// the region.
///
/// # Example
///
/// ```
/// let stub = parrot::codegen::build_invocation_stub(9, 1);
/// assert_eq!(stub.n_params(), 9);
/// assert_eq!(stub.len(), 9 + 1 + 1); // 9 enq.d, 1 deq.d, ret
/// ```
pub fn build_invocation_stub(n_inputs: usize, n_outputs: usize) -> Function {
    let mut b = FunctionBuilder::new("npu_invoke", n_inputs);
    for i in 0..n_inputs {
        let p = b.param(i);
        b.enq_d(p);
    }
    let outs: Vec<_> = (0..n_outputs).map(|_| b.deq_d()).collect();
    b.ret(&outs);
    b.build().expect("stub is structurally valid")
}

/// Builds the *config loader*: a function that ships the whole NPU
/// configuration through the config FIFO with `enq.c` instructions. "The
/// program configures the NPU when it is first loaded by sending the
/// topology parameters and synaptic weights to the NPU via its
/// configuration interface."
pub fn build_config_loader(config: &NpuConfig) -> Function {
    let mut b = FunctionBuilder::new("npu_configure", 0);
    for word in config.encode() {
        let r = b.consti(word as i32);
        b.enq_c(r);
    }
    b.ret(&[]);
    b.build().expect("loader is structurally valid")
}

/// Builds the *config saver*: the OS context-switch path that reads the
/// configuration back out with `deq.c` (paper Section 5.2, "the operating
/// system uses deq.c instructions to save the NPU configuration during
/// context switches"). Returns the words via `n_words` stores into
/// scratch memory starting at address 0.
pub fn build_config_saver(n_words: usize) -> Function {
    let mut b = FunctionBuilder::new("npu_save_config", 0);
    let base = b.consti(0);
    for i in 0..n_words {
        let w = b.deq_c();
        // Bit-preserving move: config words are raw bit patterns, not
        // numeric values.
        let f = b.bits_to_f(w);
        b.store(f, base, i as i32);
    }
    b.ret(&[]);
    b.build().expect("saver is structurally valid")
}

/// The inverse of [`build_config_saver`]: re-ships `n_words` saved
/// configuration words from data memory back to the NPU with `enq.c`
/// (the context-switch restore path).
pub fn build_config_restorer(n_words: usize) -> Function {
    let mut b = FunctionBuilder::new("npu_restore_config", 0);
    let base = b.consti(0);
    for i in 0..n_words {
        let f = b.load(base, i as i32);
        let w = b.f_to_bits(f);
        b.enq_c(w);
    }
    b.ret(&[]);
    b.build().expect("restorer is structurally valid")
}

/// Builds an *all-software* replacement for the region: an IR function
/// that evaluates the trained network on the CPU, FANN-style (paper
/// Figure 9's configuration). Returns the function plus the weight table
/// that must be preloaded into data memory at `weights_base`.
///
/// The function normalizes its inputs, walks the layers with explicit
/// loops — loading each weight from memory, multiply-accumulating,
/// applying `1/(1+e^{-x})` via the libm `exp` stand-in — and denormalizes
/// its outputs. Activations ping-pong through scratch buffers at
/// `scratch_base`.
pub fn build_software_nn(
    config: &NpuConfig,
    weights_base: i32,
    scratch_base: i32,
) -> (Function, Vec<f32>) {
    let t = config.topology().clone();
    let layers = t.layers();
    let max_width = *layers.iter().max().expect("topology has layers") as i32;
    let buf_a = scratch_base;
    let buf_b = scratch_base + max_width;

    // Weight table: canonical layer-major / neuron-major / src-major
    // (bias last) order — the same order `Mlp` stores.
    let mut table = Vec::new();
    for matrix in config.mlp().weight_matrices() {
        table.extend_from_slice(matrix);
    }

    let mut b = FunctionBuilder::new("software_nn", t.inputs());
    // 1. Normalize inputs into buffer A (unrolled; FANN also scales
    // per-dimension with precomputed factors).
    let base_a = b.consti(buf_a);
    let zero = b.constf(0.0);
    let one_f = b.constf(1.0);
    for (i, &(lo, hi)) in config.input_norm().ranges().iter().enumerate() {
        let p = b.param(i);
        let v = if hi > lo {
            let lo_r = b.constf(lo);
            let inv = b.constf(1.0 / (hi - lo));
            let d = b.fsub(p, lo_r);
            let s = b.fmul(d, inv);
            let c = b.fmax(s, zero);
            b.fmin(c, one_f)
        } else {
            b.constf(0.5)
        };
        b.store(v, base_a, i as i32);
    }

    // 2. Layer loops. `wptr` walks the weight table sequentially.
    let wptr = b.consti(weights_base);
    let one_i = b.consti(1);
    for l in 0..layers.len() - 1 {
        let n_in = b.consti(layers[l] as i32);
        let n_out = b.consti(layers[l + 1] as i32);
        let (src, dst) = if l % 2 == 0 {
            (buf_a, buf_b)
        } else {
            (buf_b, buf_a)
        };
        let src_base = b.consti(src);
        let dst_base = b.consti(dst);

        let neuron = b.consti(0);
        let neuron_top = b.new_label();
        let neuron_done = b.new_label();
        b.bind(neuron_top);
        let n_done = b.cmpi(approx_ir::CmpOp::Ge, neuron, n_out);
        b.branch_if(n_done, neuron_done);
        {
            let acc = b.constf(0.0);
            let j = b.consti(0);
            let input_top = b.new_label();
            let input_done = b.new_label();
            b.bind(input_top);
            let j_done = b.cmpi(approx_ir::CmpOp::Ge, j, n_in);
            b.branch_if(j_done, input_done);
            {
                let w = b.load(wptr, 0);
                let addr = b.iadd(src_base, j);
                let x = b.load(addr, 0);
                let prod = b.fmul(w, x);
                b.fadd_into(acc, prod);
                b.iadd_into(wptr, one_i);
                b.iadd_into(j, one_i);
                b.jump(input_top);
            }
            b.bind(input_done);
            let bias = b.load(wptr, 0);
            b.iadd_into(wptr, one_i);
            b.fadd_into(acc, bias);
            // sigmoid(acc) = 1 / (1 + e^{-acc})
            let neg = b.fneg(acc);
            let e = b.fexp(neg);
            let denom = b.fadd(e, one_f);
            let s = b.fdiv(one_f, denom);
            let daddr = b.iadd(dst_base, neuron);
            b.store(s, daddr, 0);
            b.iadd_into(neuron, one_i);
            b.jump(neuron_top);
        }
        b.bind(neuron_done);
    }

    // 3. Denormalize outputs (unrolled).
    let out_buf = if (layers.len() - 1) % 2 == 1 {
        buf_b
    } else {
        buf_a
    };
    let out_base = b.consti(out_buf);
    let mut outs = Vec::with_capacity(t.outputs());
    for (k, &(lo, hi)) in config.output_norm().ranges().iter().enumerate() {
        let v = b.load(out_base, k as i32);
        let y = if hi > lo {
            let range = b.constf(hi - lo);
            let lo_r = b.constf(lo);
            let scaled = b.fmul(v, range);
            b.fadd(scaled, lo_r)
        } else {
            b.constf(lo)
        };
        outs.push(y);
    }
    b.ret(&outs);
    (b.build().expect("software nn is structurally valid"), table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Mlp, Normalizer, Topology};
    use approx_ir::{Inst, Interpreter, NpuPort, Program, Value};

    #[test]
    fn stub_shape() {
        let stub = build_invocation_stub(2, 3);
        let enqs = stub
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::EnqD { .. }))
            .count();
        let deqs = stub
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::DeqD { .. }))
            .count();
        assert_eq!((enqs, deqs), (2, 3));
    }

    #[test]
    fn loader_ships_every_config_word() {
        let t = Topology::new(vec![2, 2, 1]).unwrap();
        let config = NpuConfig::new(
            Mlp::seeded(t, 1),
            Normalizer::identity(2),
            Normalizer::identity(1),
        );
        let loader = build_config_loader(&config);

        // Run the loader against a recording port and check the stream.
        struct Recorder(Vec<u32>);
        impl NpuPort for Recorder {
            fn enq_config(&mut self, w: u32) {
                self.0.push(w);
            }
            fn deq_config(&mut self) -> u32 {
                0
            }
            fn enq_data(&mut self, _v: f32) {}
            fn deq_data(&mut self) -> f32 {
                0.0
            }
        }
        let mut program = Program::new();
        let f = program.add_function(loader);
        let mut recorder = Recorder(Vec::new());
        let mut sink = approx_ir::NullSink;
        Interpreter::new(&program)
            .run_full(f, &[], &mut sink, Some(&mut recorder))
            .unwrap();
        assert_eq!(recorder.0, config.encode());
        // Round trip through the wire format.
        assert_eq!(NpuConfig::decode(&recorder.0).unwrap(), config);
    }

    #[test]
    fn software_nn_matches_functional_evaluation() {
        let t = Topology::new(vec![3, 8, 4, 2]).unwrap();
        let config = NpuConfig::new(
            Mlp::seeded(t, 21),
            Normalizer::new(vec![(0.0, 2.0), (-1.0, 1.0), (0.0, 1.0)]),
            Normalizer::new(vec![(0.0, 10.0), (-5.0, 5.0)]),
        );
        let weights_base = 64;
        let scratch_base = 0;
        let (f, table) = build_software_nn(&config, weights_base, scratch_base);
        let mut program = Program::new();
        let id = program.add_function(f);
        let mut interp =
            Interpreter::new(&program).with_memory(weights_base as usize + table.len());
        interp.memory_mut()[weights_base as usize..weights_base as usize + table.len()]
            .copy_from_slice(&table);
        let inputs = [1.3f32, -0.2, 0.7];
        let args: Vec<Value> = inputs.iter().map(|&v| Value::F(v)).collect();
        let out = interp.run(id, &args).unwrap();
        // The software path uses exact exp; the NPU path a 2048-entry LUT.
        let want = config.evaluate(&inputs);
        for (o, w) in out.iter().zip(&want) {
            let got = o.as_f32().unwrap();
            assert!((got - w).abs() < 2e-2, "{got} vs {w}");
        }
    }

    #[test]
    fn software_nn_dynamic_cost_scales_with_weights() {
        let t = Topology::new(vec![9, 8, 1]).unwrap();
        let config = NpuConfig::new(
            Mlp::seeded(t.clone(), 2),
            Normalizer::identity(9),
            Normalizer::identity(1),
        );
        let (f, table) = build_software_nn(&config, 100, 0);
        let mut program = Program::new();
        let id = program.add_function(f);
        let mut interp = Interpreter::new(&program).with_memory(100 + table.len());
        interp.memory_mut()[100..100 + table.len()].copy_from_slice(&table);
        let args: Vec<Value> = (0..9).map(|i| Value::F(i as f32 * 0.1)).collect();
        let mut sink = approx_ir::CountingSink::default();
        let outcome = interp.run_traced(id, &args, &mut sink).unwrap();
        // At least ~8 dynamic instructions per multiply-accumulate, as the
        // paper's FANN discussion describes.
        let macs = t.weight_count() as u64;
        assert!(
            outcome.executed > 6 * macs,
            "executed {} for {} macs",
            outcome.executed,
            macs
        );
    }

    #[test]
    fn saver_reads_n_words() {
        let saver = build_config_saver(5);
        let deqs = saver
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::DeqC { .. }))
            .count();
        assert_eq!(deqs, 5);
    }

    #[test]
    fn stub_round_trips_through_echo_port() {
        struct Echo(Vec<f32>);
        impl NpuPort for Echo {
            fn enq_config(&mut self, _w: u32) {}
            fn deq_config(&mut self) -> u32 {
                0
            }
            fn enq_data(&mut self, v: f32) {
                self.0.push(v);
            }
            fn deq_data(&mut self) -> f32 {
                self.0.iter().sum()
            }
        }
        let mut program = Program::new();
        let f = program.add_function(build_invocation_stub(3, 1));
        let mut echo = Echo(Vec::new());
        let mut sink = approx_ir::NullSink;
        let out = Interpreter::new(&program)
            .run_full(
                f,
                &[Value::F(1.0), Value::F(2.0), Value::F(3.0)],
                &mut sink,
                Some(&mut echo),
            )
            .unwrap();
        assert_eq!(out.outputs[0].as_f32().unwrap(), 6.0);
    }
}

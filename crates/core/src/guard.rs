//! Quality-control mechanisms from the paper's Section 8 ("Limitations
//! and future directions").
//!
//! The paper proposes two mitigations for occasional low-quality NPU
//! results:
//!
//! 1. *input guarding* — "check whether an input falls in the range of
//!    inputs seen previously during training. If the prediction is
//!    negative, the original code can be invoked instead of the NPU";
//! 2. *online error sampling* — "the runtime system could occasionally
//!    measure the error by comparing the NPU output to the original
//!    function's output".
//!
//! [`RangeGuard`] implements the first and [`ErrorSampler`] the second.

use crate::{CompiledRegion, ParrotError, RegionSpec};
use serde::{Deserialize, Serialize};

/// Per-dimension input-range guard.
///
/// Built from the compiled region's observed input ranges (optionally
/// widened by a tolerance); [`admits`](Self::admits) decides whether an
/// input vector is close enough to the training distribution for the NPU
/// result to be trusted.
///
/// # Example
///
/// ```
/// let guard = parrot::RangeGuard::new(vec![(0.0, 1.0)], 0.1);
/// assert!(guard.admits(&[0.5]));
/// assert!(guard.admits(&[1.05])); // within 10% widening
/// assert!(!guard.admits(&[2.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeGuard {
    ranges: Vec<(f32, f32)>,
    tolerance: f32,
}

impl RangeGuard {
    /// Creates a guard over explicit `(min, max)` ranges, widened on each
    /// side by `tolerance` × the range's width.
    pub fn new(ranges: Vec<(f32, f32)>, tolerance: f32) -> Self {
        RangeGuard { ranges, tolerance }
    }

    /// Builds the guard from a compiled region's observed input ranges.
    pub fn from_compiled(compiled: &CompiledRegion, tolerance: f32) -> Self {
        RangeGuard::new(compiled.config().input_norm().ranges().to_vec(), tolerance)
    }

    /// Whether every input dimension lies within its (widened) observed
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the guarded dimensionality.
    pub fn admits(&self, inputs: &[f32]) -> bool {
        assert_eq!(inputs.len(), self.ranges.len(), "dimension mismatch");
        inputs.iter().zip(&self.ranges).all(|(&v, &(lo, hi))| {
            let slack = (hi - lo).abs() * self.tolerance;
            v >= lo - slack && v <= hi + slack
        })
    }

    /// The guarded `(min, max)` ranges.
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.ranges
    }
}

/// Statistics from a guarded execution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Invocations answered by the NPU.
    pub npu_invocations: u64,
    /// Invocations that fell back to the original precise code.
    pub fallbacks: u64,
}

impl GuardStats {
    /// Fraction of invocations that fell back to precise execution.
    pub fn fallback_rate(&self) -> f64 {
        let total = self.npu_invocations + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.fallbacks as f64 / total as f64
        }
    }
}

/// A guarded region runtime: NPU for in-distribution inputs, the original
/// code for outliers.
#[derive(Debug)]
pub struct GuardedRegion<'a> {
    region: &'a RegionSpec,
    compiled: &'a CompiledRegion,
    guard: RangeGuard,
    stats: GuardStats,
}

impl<'a> GuardedRegion<'a> {
    /// Pairs a compiled region with its original code and an input guard
    /// widened by `tolerance`.
    pub fn new(region: &'a RegionSpec, compiled: &'a CompiledRegion, tolerance: f32) -> Self {
        GuardedRegion {
            guard: RangeGuard::from_compiled(compiled, tolerance),
            region,
            compiled,
            stats: GuardStats::default(),
        }
    }

    /// Evaluates one invocation: the NPU when the guard admits the input,
    /// the original region otherwise.
    ///
    /// # Errors
    ///
    /// Propagates precise-execution errors (the NPU path cannot fail).
    pub fn evaluate(&mut self, inputs: &[f32]) -> Result<Vec<f32>, ParrotError> {
        if self.guard.admits(inputs) {
            self.stats.npu_invocations += 1;
            Ok(self.compiled.evaluate(inputs))
        } else {
            self.stats.fallbacks += 1;
            self.region.evaluate(inputs)
        }
    }

    /// Guard decision statistics so far.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }
}

/// Online error sampling (the paper's second §8 mechanism): every
/// `period`-th invocation also runs the original code and records the
/// observed error, giving the runtime an estimate of current quality
/// ("in case the sampled error is greater than a threshold, the neural
/// network can be retrained").
#[derive(Debug)]
pub struct ErrorSampler<'a> {
    region: &'a RegionSpec,
    compiled: &'a CompiledRegion,
    period: u64,
    counter: u64,
    samples: u64,
    total_abs_error: f64,
    max_abs_error: f64,
    error_hist: telemetry::Histogram,
}

impl<'a> ErrorSampler<'a> {
    /// Samples every `period`-th invocation (period ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(region: &'a RegionSpec, compiled: &'a CompiledRegion, period: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1");
        ErrorSampler {
            region,
            compiled,
            period,
            counter: 0,
            samples: 0,
            total_abs_error: 0.0,
            max_abs_error: 0.0,
            error_hist: telemetry::Histogram::default(),
        }
    }

    /// Evaluates on the NPU; on sampling ticks also runs the original
    /// code and records the error.
    ///
    /// # Errors
    ///
    /// Propagates precise-execution errors on sampling ticks.
    pub fn evaluate(&mut self, inputs: &[f32]) -> Result<Vec<f32>, ParrotError> {
        let approx = self.compiled.evaluate(inputs);
        self.counter += 1;
        if self.counter.is_multiple_of(self.period) {
            let precise = self.region.evaluate(inputs)?;
            for (&a, &p) in approx.iter().zip(&precise) {
                let e = (a - p).abs() as f64;
                self.total_abs_error += e;
                self.max_abs_error = self.max_abs_error.max(e);
                self.error_hist.observe(e);
            }
            self.samples += 1;
        }
        Ok(approx)
    }

    /// Mean absolute error over sampled outputs (0 if nothing sampled).
    pub fn mean_abs_error(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            let outputs = self.samples * self.compiled.config().topology().outputs() as u64;
            self.total_abs_error / outputs as f64
        }
    }

    /// Largest absolute output error observed in any sample.
    pub fn max_abs_error(&self) -> f64 {
        self.max_abs_error
    }

    /// Number of sampled invocations.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Distribution of per-output absolute errors across sampled
    /// invocations — the tail (p99/p99.9) is what drift detection will
    /// watch, where the mean hides rare large misses.
    pub fn error_distribution(&self) -> &telemetry::Histogram {
        &self.error_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileParams, ParrotCompiler};
    use approx_ir::{FunctionBuilder, Program};

    fn square_region() -> RegionSpec {
        let mut b = FunctionBuilder::new("sq", 1);
        let x = b.param(0);
        let y = b.fmul(x, x);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        RegionSpec::new("sq", p, f, 1, 1).unwrap()
    }

    fn compiled_square(region: &RegionSpec) -> CompiledRegion {
        let inputs: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32 / 199.0]).collect();
        ParrotCompiler::new(CompileParams::fast())
            .compile(region, &inputs)
            .unwrap()
    }

    #[test]
    fn guard_admits_training_range_only() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let guard = RangeGuard::from_compiled(&compiled, 0.0);
        assert!(guard.admits(&[0.5]));
        assert!(!guard.admits(&[3.0]));
        assert!(!guard.admits(&[-1.0]));
    }

    #[test]
    fn guarded_region_is_exact_on_outliers() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let mut guarded = GuardedRegion::new(&region, &compiled, 0.0);
        // Out-of-range input: exact fallback.
        let out = guarded.evaluate(&[5.0]).unwrap();
        assert_eq!(out[0], 25.0);
        // In-range input: approximate.
        let approx = guarded.evaluate(&[0.5]).unwrap();
        assert!((approx[0] - 0.25).abs() < 0.2);
        let stats = guarded.stats();
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.npu_invocations, 1);
        assert!((stats.fallback_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn guard_reduces_worst_case_error() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let mut guarded = GuardedRegion::new(&region, &compiled, 0.0);
        // Mixed workload: half in-distribution, half far outside.
        let mut worst_guarded = 0.0f32;
        let mut worst_unguarded = 0.0f32;
        for k in 0..40 {
            let x = if k % 2 == 0 {
                k as f32 / 40.0
            } else {
                2.0 + k as f32
            };
            let precise = x * x;
            let g = guarded.evaluate(&[x]).unwrap()[0];
            let u = compiled.evaluate(&[x])[0];
            worst_guarded = worst_guarded.max((g - precise).abs());
            worst_unguarded = worst_unguarded.max((u - precise).abs());
        }
        assert!(
            worst_guarded < worst_unguarded / 10.0,
            "guarded {worst_guarded} vs unguarded {worst_unguarded}"
        );
    }

    #[test]
    fn error_sampler_estimates_real_error() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let mut sampler = ErrorSampler::new(&region, &compiled, 4);
        for k in 0..100 {
            sampler.evaluate(&[k as f32 / 99.0]).unwrap();
        }
        assert_eq!(sampler.samples(), 25);
        assert!(sampler.mean_abs_error() > 0.0);
        assert!(
            sampler.mean_abs_error() < 0.2,
            "{}",
            sampler.mean_abs_error()
        );
        assert!(sampler.max_abs_error() >= sampler.mean_abs_error());
        let dist = sampler.error_distribution();
        assert_eq!(dist.count, 25, "one output per sampled invocation");
        assert_eq!(dist.max, sampler.max_abs_error());
        assert!(dist.p99() <= dist.max && dist.p50() <= dist.p99());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sampler_rejects_zero_period() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let _ = ErrorSampler::new(&region, &compiled, 0);
    }
}

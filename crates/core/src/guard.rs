//! Quality-control mechanisms from the paper's Section 8 ("Limitations
//! and future directions").
//!
//! The paper proposes two mitigations for occasional low-quality NPU
//! results:
//!
//! 1. *input guarding* — "check whether an input falls in the range of
//!    inputs seen previously during training. If the prediction is
//!    negative, the original code can be invoked instead of the NPU";
//! 2. *online error sampling* — "the runtime system could occasionally
//!    measure the error by comparing the NPU output to the original
//!    function's output".
//!
//! [`RangeGuard`] implements the first and [`ErrorSampler`] the second.

use crate::{CompiledRegion, ParrotError, RegionSpec};
use serde::{Deserialize, Serialize};

/// Per-dimension input-range guard.
///
/// Built from the compiled region's observed input ranges (optionally
/// widened by a tolerance); [`admits`](Self::admits) decides whether an
/// input vector is close enough to the training distribution for the NPU
/// result to be trusted.
///
/// # Example
///
/// ```
/// let guard = parrot::RangeGuard::new(vec![(0.0, 1.0)], 0.1);
/// assert!(guard.admits(&[0.5]));
/// assert!(guard.admits(&[1.05])); // within 10% widening
/// assert!(!guard.admits(&[2.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeGuard {
    ranges: Vec<(f32, f32)>,
    tolerance: f32,
}

impl RangeGuard {
    /// Creates a guard over explicit `(min, max)` ranges, widened on each
    /// side by `tolerance` × the range's width.
    pub fn new(ranges: Vec<(f32, f32)>, tolerance: f32) -> Self {
        RangeGuard { ranges, tolerance }
    }

    /// Builds the guard from a compiled region's observed input ranges.
    pub fn from_compiled(compiled: &CompiledRegion, tolerance: f32) -> Self {
        RangeGuard::new(compiled.config().input_norm().ranges().to_vec(), tolerance)
    }

    /// Whether every input dimension lies within its (widened) observed
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the guarded dimensionality.
    pub fn admits(&self, inputs: &[f32]) -> bool {
        assert_eq!(inputs.len(), self.ranges.len(), "dimension mismatch");
        inputs.iter().zip(&self.ranges).all(|(&v, &(lo, hi))| {
            let slack = (hi - lo).abs() * self.tolerance;
            v >= lo - slack && v <= hi + slack
        })
    }

    /// The guarded `(min, max)` ranges.
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.ranges
    }
}

/// Statistics from a guarded execution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Invocations answered by the NPU.
    pub npu_invocations: u64,
    /// Invocations that fell back to the original precise code.
    pub fallbacks: u64,
}

impl GuardStats {
    /// Fraction of invocations that fell back to precise execution.
    pub fn fallback_rate(&self) -> f64 {
        let total = self.npu_invocations + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.fallbacks as f64 / total as f64
        }
    }
}

/// A guarded region runtime: NPU for in-distribution inputs, the original
/// code for outliers.
#[derive(Debug)]
pub struct GuardedRegion<'a> {
    region: &'a RegionSpec,
    compiled: &'a CompiledRegion,
    guard: RangeGuard,
    stats: GuardStats,
}

impl<'a> GuardedRegion<'a> {
    /// Pairs a compiled region with its original code and an input guard
    /// widened by `tolerance`.
    pub fn new(region: &'a RegionSpec, compiled: &'a CompiledRegion, tolerance: f32) -> Self {
        GuardedRegion {
            guard: RangeGuard::from_compiled(compiled, tolerance),
            region,
            compiled,
            stats: GuardStats::default(),
        }
    }

    /// Evaluates one invocation: the NPU when the guard admits the input,
    /// the original region otherwise.
    ///
    /// # Errors
    ///
    /// Propagates precise-execution errors (the NPU path cannot fail).
    pub fn evaluate(&mut self, inputs: &[f32]) -> Result<Vec<f32>, ParrotError> {
        if self.guard.admits(inputs) {
            self.stats.npu_invocations += 1;
            Ok(self.compiled.evaluate(inputs))
        } else {
            self.stats.fallbacks += 1;
            self.region.evaluate(inputs)
        }
    }

    /// Guard decision statistics so far.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }
}

/// Which implementation answers an invocation: the approximate NPU or
/// the original precise code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecPath {
    /// The neural accelerator (approximate, fast).
    Npu,
    /// The original region code (exact, slow).
    Precise,
}

/// A per-tenant quality budget: an allowance of accumulated observed
/// error that, once spent, routes every further invocation to the
/// precise path.
///
/// This is the serving-side composition of the paper's §8 mechanisms:
/// online error sampling ([`ErrorSampler`]) produces error observations,
/// the budget integrates them, and a drained budget degrades the tenant
/// gracefully to exact execution instead of failing its requests. The
/// budget is monotone — error only accumulates, so once
/// [`drained`](Self::drained) turns true it stays true (there is no
/// refill; retraining would install a fresh budget).
///
/// # Example
///
/// ```
/// use parrot::{ErrorBudget, ExecPath};
/// let mut b = ErrorBudget::new(0.5);
/// assert_eq!(b.route(), ExecPath::Npu);
/// b.charge(0.3);
/// b.charge(0.3);
/// assert!(b.drained());
/// assert_eq!(b.route(), ExecPath::Precise);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBudget {
    budget: f64,
    spent: f64,
}

impl ErrorBudget {
    /// A budget allowing `budget` total accumulated error. A zero budget
    /// is drained from the start (every invocation runs precise).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or NaN.
    pub fn new(budget: f64) -> Self {
        assert!(budget >= 0.0, "error budget must be non-negative");
        ErrorBudget { budget, spent: 0.0 }
    }

    /// A budget that never drains (tenants without quality guarantees).
    pub fn unlimited() -> Self {
        ErrorBudget::new(f64::INFINITY)
    }

    /// Records one observed error. Negative observations are clamped to
    /// zero; a NaN observation (quality unknowable) conservatively drains
    /// the budget outright.
    pub fn charge(&mut self, error: f64) {
        if error.is_nan() {
            self.spent = f64::INFINITY;
        } else {
            self.spent += error.max(0.0);
        }
    }

    /// Total error charged so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget left before the tenant degrades to precise execution.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// Whether the budget is spent (NPU service withdrawn). A NaN
    /// budget conservatively counts as drained; `spent` itself is
    /// never NaN (`charge` maps NaN observations to infinity).
    pub fn drained(&self) -> bool {
        self.spent >= self.budget || self.budget.is_nan()
    }

    /// The execution path this budget currently routes to.
    pub fn route(&self) -> ExecPath {
        if self.drained() {
            ExecPath::Precise
        } else {
            ExecPath::Npu
        }
    }
}

/// Online error sampling (the paper's second §8 mechanism): every
/// `period`-th invocation also runs the original code and records the
/// observed error, giving the runtime an estimate of current quality
/// ("in case the sampled error is greater than a threshold, the neural
/// network can be retrained").
#[derive(Debug)]
pub struct ErrorSampler<'a> {
    region: &'a RegionSpec,
    compiled: &'a CompiledRegion,
    period: u64,
    counter: u64,
    samples: u64,
    total_abs_error: f64,
    max_abs_error: f64,
    error_hist: telemetry::Histogram,
}

impl<'a> ErrorSampler<'a> {
    /// Samples every `period`-th invocation (period ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(region: &'a RegionSpec, compiled: &'a CompiledRegion, period: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1");
        ErrorSampler {
            region,
            compiled,
            period,
            counter: 0,
            samples: 0,
            total_abs_error: 0.0,
            max_abs_error: 0.0,
            error_hist: telemetry::Histogram::default(),
        }
    }

    /// Evaluates on the NPU; on sampling ticks also runs the original
    /// code and records the error.
    ///
    /// # Errors
    ///
    /// Propagates precise-execution errors on sampling ticks.
    pub fn evaluate(&mut self, inputs: &[f32]) -> Result<Vec<f32>, ParrotError> {
        let approx = self.compiled.evaluate(inputs);
        self.counter += 1;
        if self.counter.is_multiple_of(self.period) {
            let precise = self.region.evaluate(inputs)?;
            for (&a, &p) in approx.iter().zip(&precise) {
                let e = (a - p).abs() as f64;
                self.total_abs_error += e;
                self.max_abs_error = self.max_abs_error.max(e);
                self.error_hist.observe(e);
            }
            self.samples += 1;
        }
        Ok(approx)
    }

    /// Mean absolute error over sampled outputs (0 if nothing sampled).
    pub fn mean_abs_error(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            let outputs = self.samples * self.compiled.config().topology().outputs() as u64;
            self.total_abs_error / outputs as f64
        }
    }

    /// Largest absolute output error observed in any sample.
    pub fn max_abs_error(&self) -> f64 {
        self.max_abs_error
    }

    /// Number of sampled invocations.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Distribution of per-output absolute errors across sampled
    /// invocations — the tail (p99/p99.9) is what drift detection will
    /// watch, where the mean hides rare large misses.
    pub fn error_distribution(&self) -> &telemetry::Histogram {
        &self.error_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileParams, ParrotCompiler};
    use approx_ir::{FunctionBuilder, Program};

    fn square_region() -> RegionSpec {
        let mut b = FunctionBuilder::new("sq", 1);
        let x = b.param(0);
        let y = b.fmul(x, x);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        RegionSpec::new("sq", p, f, 1, 1).unwrap()
    }

    fn compiled_square(region: &RegionSpec) -> CompiledRegion {
        let inputs: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32 / 199.0]).collect();
        ParrotCompiler::new(CompileParams::fast())
            .compile(region, &inputs)
            .unwrap()
    }

    #[test]
    fn guard_admits_training_range_only() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let guard = RangeGuard::from_compiled(&compiled, 0.0);
        assert!(guard.admits(&[0.5]));
        assert!(!guard.admits(&[3.0]));
        assert!(!guard.admits(&[-1.0]));
    }

    #[test]
    fn guarded_region_is_exact_on_outliers() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let mut guarded = GuardedRegion::new(&region, &compiled, 0.0);
        // Out-of-range input: exact fallback.
        let out = guarded.evaluate(&[5.0]).unwrap();
        assert_eq!(out[0], 25.0);
        // In-range input: approximate.
        let approx = guarded.evaluate(&[0.5]).unwrap();
        assert!((approx[0] - 0.25).abs() < 0.2);
        let stats = guarded.stats();
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.npu_invocations, 1);
        assert!((stats.fallback_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn guard_reduces_worst_case_error() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let mut guarded = GuardedRegion::new(&region, &compiled, 0.0);
        // Mixed workload: half in-distribution, half far outside.
        let mut worst_guarded = 0.0f32;
        let mut worst_unguarded = 0.0f32;
        for k in 0..40 {
            let x = if k % 2 == 0 {
                k as f32 / 40.0
            } else {
                2.0 + k as f32
            };
            let precise = x * x;
            let g = guarded.evaluate(&[x]).unwrap()[0];
            let u = compiled.evaluate(&[x])[0];
            worst_guarded = worst_guarded.max((g - precise).abs());
            worst_unguarded = worst_unguarded.max((u - precise).abs());
        }
        assert!(
            worst_guarded < worst_unguarded / 10.0,
            "guarded {worst_guarded} vs unguarded {worst_unguarded}"
        );
    }

    #[test]
    fn error_sampler_estimates_real_error() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let mut sampler = ErrorSampler::new(&region, &compiled, 4);
        for k in 0..100 {
            sampler.evaluate(&[k as f32 / 99.0]).unwrap();
        }
        assert_eq!(sampler.samples(), 25);
        assert!(sampler.mean_abs_error() > 0.0);
        assert!(
            sampler.mean_abs_error() < 0.2,
            "{}",
            sampler.mean_abs_error()
        );
        assert!(sampler.max_abs_error() >= sampler.mean_abs_error());
        let dist = sampler.error_distribution();
        assert_eq!(dist.count, 25, "one output per sampled invocation");
        assert_eq!(dist.max, sampler.max_abs_error());
        assert!(dist.p99() <= dist.max && dist.p50() <= dist.p99());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sampler_rejects_zero_period() {
        let region = square_region();
        let compiled = compiled_square(&region);
        let _ = ErrorSampler::new(&region, &compiled, 0);
    }

    #[test]
    fn zero_budget_is_drained_from_the_start() {
        let b = ErrorBudget::new(0.0);
        assert!(b.drained());
        assert_eq!(b.route(), ExecPath::Precise);
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn nan_charge_drains_conservatively() {
        let mut b = ErrorBudget::unlimited();
        assert_eq!(b.route(), ExecPath::Npu);
        b.charge(f64::NAN);
        assert!(b.drained(), "unknowable quality must withdraw the NPU");
        assert_eq!(b.route(), ExecPath::Precise);
    }

    use proptest::prelude::*;

    proptest! {
        /// Once a budget drains it routes to the precise path for every
        /// subsequent invocation — charges only accumulate, so the
        /// degradation is monotone and the final verdict matches the
        /// same-order error sum.
        #[test]
        fn drained_budget_always_routes_precise(
            budget in 0.0f64..2.0,
            charges in proptest::collection::vec(0.0f64..0.3, 1..60),
        ) {
            let mut b = ErrorBudget::new(budget);
            let mut sum = 0.0f64;
            let mut seen_drained = false;
            for &e in &charges {
                b.charge(e);
                sum += e;
                if b.drained() {
                    seen_drained = true;
                }
                if seen_drained {
                    prop_assert!(b.drained(), "drained budgets never refill");
                    prop_assert_eq!(b.route(), ExecPath::Precise);
                } else {
                    prop_assert_eq!(b.route(), ExecPath::Npu);
                }
            }
            prop_assert_eq!(b.drained(), sum >= budget);
            prop_assert_eq!(b.spent().to_bits(), sum.to_bits());
        }

        /// Interleaving two tenants' charges in any order leaves each
        /// budget's accounting bit-identical to charging it alone — one
        /// tenant's traffic can never spend another tenant's budget.
        #[test]
        fn budget_accounting_is_exact_across_interleaved_tenants(
            charges_a in proptest::collection::vec(0.0f64..0.5, 1..40),
            charges_b in proptest::collection::vec(0.0f64..0.5, 1..40),
            seed in 0u64..1000,
        ) {
            let mut interleaved_a = ErrorBudget::new(1.0);
            let mut interleaved_b = ErrorBudget::new(1.0);
            // Deterministic interleave driven by the seed: merge the two
            // charge streams while preserving each tenant's order.
            let (mut ia, mut ib) = (0usize, 0usize);
            let mut state = seed;
            while ia < charges_a.len() || ib < charges_b.len() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pick_a = ib >= charges_b.len() || (ia < charges_a.len() && state & 1 == 0);
                if pick_a {
                    interleaved_a.charge(charges_a[ia]);
                    ia += 1;
                } else {
                    interleaved_b.charge(charges_b[ib]);
                    ib += 1;
                }
            }
            let mut solo_a = ErrorBudget::new(1.0);
            charges_a.iter().for_each(|&e| solo_a.charge(e));
            let mut solo_b = ErrorBudget::new(1.0);
            charges_b.iter().for_each(|&e| solo_b.charge(e));
            prop_assert_eq!(interleaved_a.spent().to_bits(), solo_a.spent().to_bits());
            prop_assert_eq!(interleaved_b.spent().to_bits(), solo_b.spent().to_bits());
            prop_assert_eq!(interleaved_a.drained(), solo_a.drained());
            prop_assert_eq!(interleaved_b.drained(), solo_b.drained());
        }
    }
}

//! Code observation (paper Section 4.1): run the instrumented region on
//! representative inputs and log input–output pairs plus value ranges.

use crate::{ParrotError, RegionSpec};
use ann::{Dataset, Normalizer};
use serde::{Deserialize, Serialize};

/// The product of the observation phase: the training dataset and the
/// min/max ranges the NPU's scaling unit will use.
///
/// Serializable so an experiment harness can cache one observation pass
/// and reuse it across training configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Logged input–output pairs.
    pub data: Dataset,
    /// Per-input-dimension `(min, max)`.
    pub input_norm: Normalizer,
    /// Per-output-dimension `(min, max)`.
    pub output_norm: Normalizer,
}

/// Runs `region` on every vector in `inputs`, recording the samples "each
/// time the candidate function executes" and measuring "the minimum and
/// maximum value for each input and output".
///
/// # Errors
///
/// Returns [`ParrotError::NoTrainingData`] for an empty input list, a
/// dimension error if any input has the wrong arity, or an execution error
/// if the region faults.
pub fn observe(region: &RegionSpec, inputs: &[Vec<f32>]) -> Result<Observation, ParrotError> {
    if inputs.is_empty() {
        return Err(ParrotError::NoTrainingData);
    }
    let mut data = Dataset::new(region.n_inputs(), region.n_outputs());
    for input in inputs {
        let output = region.evaluate(input)?;
        data.push(input, &output).map_err(ParrotError::Training)?;
    }
    let input_norm = Normalizer::new(data.input_ranges().expect("dataset is non-empty"));
    let output_norm = Normalizer::new(data.output_ranges().expect("dataset is non-empty"));
    Ok(Observation {
        data,
        input_norm,
        output_norm,
    })
}

impl Observation {
    /// Builds the *normalized* training dataset (both sides mapped to
    /// `[0,1]`) — the values the network actually trains on.
    pub fn normalized(&self) -> Dataset {
        let mut out = Dataset::new(self.data.n_inputs(), self.data.n_outputs());
        for (input, output) in self.data.iter() {
            let mut i = input.to_vec();
            let mut o = output.to_vec();
            self.input_norm.normalize(&mut i);
            self.output_norm.normalize(&mut o);
            out.push(&i, &o).expect("same dimensions");
        }
        out
    }
}

/// Builds the normalized training dataset from an observation (method
/// alias kept for the compiler's internal call site).
pub(crate) fn normalized_dataset(obs: &Observation) -> Dataset {
    obs.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_ir::{FunctionBuilder, Program};

    fn linear_region() -> RegionSpec {
        // f(x) = 2x + 1
        let mut b = FunctionBuilder::new("lin", 1);
        let x = b.param(0);
        let two = b.constf(2.0);
        let one = b.constf(1.0);
        let xx = b.fmul(x, two);
        let y = b.fadd(xx, one);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        RegionSpec::new("lin", p, f, 1, 1).unwrap()
    }

    #[test]
    fn observation_logs_all_samples_and_ranges() {
        let region = linear_region();
        let inputs: Vec<Vec<f32>> = (0..=10).map(|i| vec![i as f32]).collect();
        let obs = observe(&region, &inputs).unwrap();
        assert_eq!(obs.data.len(), 11);
        assert_eq!(obs.input_norm.ranges(), &[(0.0, 10.0)]);
        assert_eq!(obs.output_norm.ranges(), &[(1.0, 21.0)]);
    }

    #[test]
    fn normalized_dataset_is_unit_range() {
        let region = linear_region();
        let inputs: Vec<Vec<f32>> = (0..=4).map(|i| vec![i as f32]).collect();
        let obs = observe(&region, &inputs).unwrap();
        let norm = normalized_dataset(&obs);
        for (i, o) in norm.iter() {
            assert!((0.0..=1.0).contains(&i[0]));
            assert!((0.0..=1.0).contains(&o[0]));
        }
        // Linear function: normalized input equals normalized output.
        for (i, o) in norm.iter() {
            assert!((i[0] - o[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_inputs_are_an_error() {
        let region = linear_region();
        assert!(matches!(
            observe(&region, &[]),
            Err(ParrotError::NoTrainingData)
        ));
    }
}

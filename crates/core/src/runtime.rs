//! Runtime adapter: answers the IR interpreter's NPU queue instructions
//! with a fast functional model of the NPU.
//!
//! Functional and counting runs (and the *value* side of timed runs —
//! timing comes from the core's attached cycle-accurate simulator, not
//! from this port) only need the architecturally visible effect of each
//! invocation. Driving the full cycle-level [`NpuSim`](npu::NpuSim) for
//! that, as earlier revisions did, pays bus-schedule and FIFO machinery
//! costs per invocation that contribute nothing to the produced values.
//! This port instead evaluates invocations directly through the batched
//! SIMD replay kernel ([`BatchEvaluator`]): values are bit-identical to
//! the simulator (which matches [`NpuConfig::evaluate`] by construction),
//! and sweeps spend their time in training and timing instead of
//! redundant functional cycle simulation.

use approx_ir::NpuPort;
use npu::{BatchEvaluator, NpuConfig, NpuError, NpuParams, Scheduler};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Record a throughput sample after this many invocations, so long
/// sweeps see the distribution rather than a single end-of-run number.
const THROUGHPUT_WINDOW: u64 = 4096;

#[derive(Debug)]
struct Loaded {
    config: NpuConfig,
    /// The wire encoding, for `deq.c` context-switch readback.
    encoded: Vec<u32>,
    readback_pos: usize,
}

/// A functional NPU runtime backing the interpreter's `enq.*`/`deq.*`
/// instructions.
///
/// `enq.c` words accumulate until a full configuration decodes (which is
/// also validated against the hardware sizing in `params`, exactly like
/// the cycle-accurate simulator's configuration path); `enq.d` buffers
/// inputs; `deq.d` evaluates every complete pending invocation through
/// the batched replay kernel and streams the outputs back. Values are
/// bit-identical to the hardware model.
#[derive(Debug)]
pub struct NpuRuntime {
    params: NpuParams,
    state: Option<Loaded>,
    cfg_accum: Vec<u32>,
    /// Committed `enq.d` values not yet consumed by an evaluation.
    pending: Vec<f32>,
    /// Evaluated outputs awaiting `deq.d`.
    out_queue: VecDeque<f32>,
    evaluator: BatchEvaluator,
    out_buf: Vec<f32>,
    /// Lifetime invocation count (architectural, like the sim's stats).
    invocations: u64,
    window_invocations: u64,
    window_busy: Duration,
}

impl NpuRuntime {
    /// Creates an unconfigured runtime (configure via `enq.c` instructions
    /// or [`configure`](Self::configure)).
    pub fn new(params: NpuParams) -> Self {
        NpuRuntime {
            params,
            state: None,
            cfg_accum: Vec::new(),
            pending: Vec::new(),
            out_queue: VecDeque::new(),
            evaluator: BatchEvaluator::new(),
            out_buf: Vec::new(),
            invocations: 0,
            window_invocations: 0,
            window_busy: Duration::ZERO,
        }
    }

    /// Creates a runtime with a configuration pre-loaded.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error if the network does not fit.
    pub fn configured(params: NpuParams, config: &NpuConfig) -> Result<Self, NpuError> {
        let mut rt = NpuRuntime::new(params);
        rt.configure(config)?;
        Ok(rt)
    }

    /// Loads a configuration.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error if the network does not fit.
    pub fn configure(&mut self, config: &NpuConfig) -> Result<(), NpuError> {
        // The functional port never walks the bus schedule, but a network
        // the hardware cannot hold must still be rejected here — a
        // functional run that silently accepted it would diverge from
        // every timed run.
        Scheduler::new(self.params.clone()).schedule(config)?;
        self.state = Some(Loaded {
            encoded: config.encode(),
            config: config.clone(),
            readback_pos: 0,
        });
        Ok(())
    }

    /// Whether a configuration is loaded.
    pub fn is_configured(&self) -> bool {
        self.state.is_some()
    }

    /// The loaded configuration, if any.
    pub fn current_config(&self) -> Option<&NpuConfig> {
        self.state.as_ref().map(|s| &s.config)
    }

    /// Completed invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Evaluates every complete invocation sitting in the input buffer
    /// and queues the outputs. Called lazily from `deq_data`, so by the
    /// time an output is demanded, all inputs enqueued before it form the
    /// batch.
    fn flush_pending(&mut self) {
        let state = self
            .state
            .as_ref()
            .expect("npu data access before configuration");
        let n_in = state.config.topology().inputs();
        let complete = self.pending.len() / n_in;
        if complete == 0 {
            return;
        }
        let start = Instant::now();
        self.evaluator.run_flat(
            &state.config,
            &self.pending[..complete * n_in],
            &mut self.out_buf,
        );
        self.out_queue.extend(self.out_buf.iter().copied());
        self.pending.drain(..complete * n_in);
        self.invocations += complete as u64;
        self.window_invocations += complete as u64;
        self.window_busy += start.elapsed();
        if self.window_invocations >= THROUGHPUT_WINDOW {
            self.flush_throughput();
        }
    }

    /// Emits the current window's functional throughput to the global
    /// sample registry (surfaced as a sweep-level distribution in the
    /// run report).
    fn flush_throughput(&mut self) {
        let secs = self.window_busy.as_secs_f64();
        if self.window_invocations > 0 && secs > 0.0 {
            telemetry::record_sample(
                "npu.functional.invocations_per_s",
                self.window_invocations as f64 / secs,
            );
        }
        self.window_invocations = 0;
        self.window_busy = Duration::ZERO;
    }
}

impl Drop for NpuRuntime {
    fn drop(&mut self) {
        self.flush_throughput();
    }
}

impl NpuPort for NpuRuntime {
    fn enq_config(&mut self, word: u32) {
        self.cfg_accum.push(word);
        let expected =
            NpuConfig::stream_len(&self.cfg_accum).expect("invalid configuration word stream");
        if expected == Some(self.cfg_accum.len()) {
            let words = std::mem::take(&mut self.cfg_accum);
            let config = NpuConfig::decode(&words).expect("invalid configuration word stream");
            Scheduler::new(self.params.clone())
                .schedule(&config)
                .expect("configuration does not fit the npu");
            self.state = Some(Loaded {
                config,
                encoded: words,
                readback_pos: 0,
            });
        }
    }

    fn deq_config(&mut self) -> u32 {
        let state = self.state.as_mut().expect("deq.c on an unconfigured npu");
        let word = state.encoded[state.readback_pos];
        state.readback_pos = (state.readback_pos + 1) % state.encoded.len();
        word
    }

    fn enq_data(&mut self, value: f32) {
        self.pending.push(value);
    }

    fn deq_data(&mut self) -> f32 {
        if self.out_queue.is_empty() {
            self.flush_pending();
        }
        self.out_queue
            .pop_front()
            .expect("deq.d but the npu never produced an output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_invocation_stub;
    use ann::{Mlp, Normalizer, Topology};
    use approx_ir::{Interpreter, NullSink, Program, Value};

    fn config() -> NpuConfig {
        let t = Topology::new(vec![2, 4, 1]).unwrap();
        NpuConfig::new(
            Mlp::seeded(t, 12),
            Normalizer::identity(2),
            Normalizer::identity(1),
        )
    }

    #[test]
    fn stub_through_runtime_matches_reference_evaluation() {
        let config = config();
        let mut runtime = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
        let mut program = Program::new();
        let stub = program.add_function(build_invocation_stub(2, 1));
        let mut sink = NullSink;
        let out = Interpreter::new(&program)
            .run_full(
                stub,
                &[Value::F(0.25), Value::F(0.75)],
                &mut sink,
                Some(&mut runtime),
            )
            .unwrap();
        let expected = config.evaluate(&[0.25, 0.75]);
        // Bit-identical, not merely close: the functional port and the
        // reference evaluation share one arithmetic path.
        assert_eq!(out.outputs[0].as_f32().unwrap(), expected[0]);
    }

    #[test]
    fn runtime_supports_config_via_enq_c() {
        let config = config();
        let mut runtime = NpuRuntime::new(NpuParams::default());
        let loader = crate::codegen::build_config_loader(&config);
        let mut program = Program::new();
        let f = program.add_function(loader);
        let mut sink = NullSink;
        Interpreter::new(&program)
            .run_full(f, &[], &mut sink, Some(&mut runtime))
            .unwrap();
        assert!(runtime.is_configured());
        assert_eq!(runtime.current_config(), Some(&config));
    }

    #[test]
    fn config_readback_round_trips() {
        let config = config();
        let mut runtime = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
        let words: Vec<u32> = (0..config.encoded_len())
            .map(|_| runtime.deq_config())
            .collect();
        assert_eq!(NpuConfig::decode(&words).unwrap(), config);
        // The read position wraps for the next context switch.
        assert_eq!(runtime.deq_config(), words[0]);
    }

    #[test]
    fn oversized_network_is_rejected() {
        let t = Topology::new(vec![2, 4096, 1]).unwrap();
        let big = NpuConfig::new(
            Mlp::seeded(t, 1),
            Normalizer::identity(2),
            Normalizer::identity(1),
        );
        assert!(NpuRuntime::configured(NpuParams::default(), &big).is_err());
    }

    #[test]
    fn repeated_invocations_stay_consistent() {
        let config = config();
        let mut runtime = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
        let mut program = Program::new();
        let stub = program.add_function(build_invocation_stub(2, 1));
        for k in 0..10 {
            let a = 0.1 * k as f32;
            let mut sink = NullSink;
            let out = Interpreter::new(&program)
                .run_full(
                    stub,
                    &[Value::F(a), Value::F(1.0 - a)],
                    &mut sink,
                    Some(&mut runtime),
                )
                .unwrap();
            let expected = config.evaluate(&[a, 1.0 - a]);
            assert_eq!(out.outputs[0].as_f32().unwrap(), expected[0]);
        }
        assert_eq!(runtime.invocations(), 10);
    }

    #[test]
    fn pipelined_invocations_batch_through_one_flush() {
        // Nothing stops a program from enqueuing several invocations
        // before dequeuing (the hardware FIFOs exist precisely for
        // that); the lazy flush must evaluate them as one batch and
        // stream outputs back in order.
        let config = config();
        let mut runtime = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
        let inputs: Vec<[f32; 2]> = (0..5)
            .map(|k| [0.2 * k as f32, 0.9 - 0.1 * k as f32])
            .collect();
        for inv in &inputs {
            runtime.enq_data(inv[0]);
            runtime.enq_data(inv[1]);
        }
        for inv in &inputs {
            let expected = config.evaluate(inv);
            assert_eq!(runtime.deq_data(), expected[0]);
        }
        assert_eq!(runtime.invocations(), 5);
    }
}

//! Runtime adapter: plugs the NPU simulator into the IR interpreter's
//! queue-instruction port.

use approx_ir::NpuPort;
use npu::{NpuConfig, NpuError, NpuParams, NpuSim};

/// A functional NPU runtime backing the interpreter's `enq.*`/`deq.*`
/// instructions with the cycle-accurate simulator.
///
/// `enq_data` pushes (and immediately commits — the interpreter executes
/// only correct-path instructions); `deq_data` runs the NPU forward until
/// an output appears. This yields bit-identical values to the hardware
/// model while letting functional execution run far ahead of any timing
/// simulation.
#[derive(Debug)]
pub struct NpuRuntime {
    sim: NpuSim,
}

impl NpuRuntime {
    /// Creates an unconfigured runtime (configure via `enq.c` instructions
    /// or [`configure`](Self::configure)).
    pub fn new(params: NpuParams) -> Self {
        NpuRuntime {
            sim: NpuSim::new(params),
        }
    }

    /// Creates a runtime with a configuration pre-loaded.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error if the network does not fit.
    pub fn configured(params: NpuParams, config: &NpuConfig) -> Result<Self, NpuError> {
        let mut sim = NpuSim::new(params);
        sim.configure(config)?;
        Ok(NpuRuntime { sim })
    }

    /// Loads a configuration.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error if the network does not fit.
    pub fn configure(&mut self, config: &NpuConfig) -> Result<(), NpuError> {
        self.sim.configure(config)
    }

    /// Access to the underlying simulator (e.g. for statistics).
    pub fn sim(&self) -> &NpuSim {
        &self.sim
    }

    /// Consumes the runtime, returning the simulator.
    pub fn into_sim(self) -> NpuSim {
        self.sim
    }
}

impl NpuPort for NpuRuntime {
    fn enq_config(&mut self, word: u32) {
        self.sim
            .enq_config_word(word)
            .expect("invalid configuration word stream");
    }

    fn deq_config(&mut self) -> u32 {
        self.sim
            .deq_config_word()
            .expect("deq.c on an unconfigured npu")
    }

    fn enq_data(&mut self, value: f32) {
        assert!(
            self.sim.input_has_space(),
            "enq.d with full input fifo in functional mode"
        );
        self.sim.enqueue_input(value);
        self.sim.commit_inputs(1);
    }

    fn deq_data(&mut self) -> f32 {
        self.sim
            .run_until_output()
            .expect("deq.d but the npu never produced an output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_invocation_stub;
    use ann::{Mlp, Normalizer, Topology};
    use approx_ir::{Interpreter, NullSink, Program, Value};

    fn config() -> NpuConfig {
        let t = Topology::new(vec![2, 4, 1]).unwrap();
        NpuConfig::new(
            Mlp::seeded(t, 12),
            Normalizer::identity(2),
            Normalizer::identity(1),
        )
    }

    #[test]
    fn stub_through_runtime_matches_reference_evaluation() {
        let config = config();
        let mut runtime = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
        let mut program = Program::new();
        let stub = program.add_function(build_invocation_stub(2, 1));
        let mut sink = NullSink;
        let out = Interpreter::new(&program)
            .run_full(
                stub,
                &[Value::F(0.25), Value::F(0.75)],
                &mut sink,
                Some(&mut runtime),
            )
            .unwrap();
        let expected = config.evaluate(&[0.25, 0.75]);
        assert!((out.outputs[0].as_f32().unwrap() - expected[0]).abs() < 1e-6);
    }

    #[test]
    fn runtime_supports_config_via_enq_c() {
        let config = config();
        let mut runtime = NpuRuntime::new(NpuParams::default());
        let loader = crate::codegen::build_config_loader(&config);
        let mut program = Program::new();
        let f = program.add_function(loader);
        let mut sink = NullSink;
        Interpreter::new(&program)
            .run_full(f, &[], &mut sink, Some(&mut runtime))
            .unwrap();
        assert!(runtime.sim().configured());
        assert_eq!(runtime.sim().current_config(), Some(&config));
    }

    #[test]
    fn repeated_invocations_stay_consistent() {
        let config = config();
        let mut runtime = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
        let mut program = Program::new();
        let stub = program.add_function(build_invocation_stub(2, 1));
        for k in 0..10 {
            let a = 0.1 * k as f32;
            let mut sink = NullSink;
            let out = Interpreter::new(&program)
                .run_full(
                    stub,
                    &[Value::F(a), Value::F(1.0 - a)],
                    &mut sink,
                    Some(&mut runtime),
                )
                .unwrap();
            let expected = config.evaluate(&[a, 1.0 - a]);
            assert!((out.outputs[0].as_f32().unwrap() - expected[0]).abs() < 1e-6);
        }
        assert_eq!(runtime.sim().stats().invocations, 10);
    }
}

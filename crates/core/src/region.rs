//! Candidate code regions (the paper's `[[PARROT]]`-annotated functions).

use crate::ParrotError;
use approx_ir::analysis::{
    infer_types, verify_region_with_inputs, AbsValue, FloatInterval, PrecisionReport, RegType,
    VerifyReport,
};
use approx_ir::{static_counts, FuncId, Interpreter, Program, StaticCounts, TraceSink, Value};

/// An annotated candidate region: a pure IR function with a fixed number
/// of `f32` inputs and outputs.
///
/// Paper Section 3.1's criteria map to this type's invariants:
/// *well-defined inputs and outputs* (fixed arity, checked against the IR
/// function), *purity* (the IR has no global state; a region gets a
/// private scratch memory whose contents do not persist across calls),
/// and *hot / approximable* (the caller's judgement, as in the paper).
#[derive(Debug, Clone)]
pub struct RegionSpec {
    name: String,
    program: Program,
    entry: FuncId,
    n_inputs: usize,
    n_outputs: usize,
    scratch_words: usize,
    input_range: Option<(f32, f32)>,
}

impl RegionSpec {
    /// Declares a region over `program`'s `entry` function.
    ///
    /// # Errors
    ///
    /// Returns [`ParrotError::InvalidRegion`] if the entry function's
    /// parameter or return arity does not match `n_inputs`/`n_outputs`,
    /// or if any entry parameter is not used as an `f32` value (the
    /// Parrot call convention passes every region input as a float).
    pub fn new(
        name: impl Into<String>,
        program: Program,
        entry: FuncId,
        n_inputs: usize,
        n_outputs: usize,
    ) -> Result<Self, ParrotError> {
        let f = program
            .function_by_index(entry.0)
            .ok_or_else(|| ParrotError::InvalidRegion("entry function missing".into()))?;
        if f.n_params() != n_inputs {
            return Err(ParrotError::InvalidRegion(format!(
                "entry takes {} params but region declares {} inputs",
                f.n_params(),
                n_inputs
            )));
        }
        if f.n_rets() != n_outputs {
            return Err(ParrotError::InvalidRegion(format!(
                "entry returns {} values but region declares {} outputs",
                f.n_rets(),
                n_outputs
            )));
        }
        // Region inputs cross the NPU boundary as floats; a parameter the
        // body consumes as an integer cannot be approximated.
        let types = infer_types(&program);
        let param_types = types[entry.0 as usize].prefix(f.n_params()).to_vec();
        for (i, ty) in param_types.into_iter().enumerate() {
            if matches!(ty, RegType::Int | RegType::Conflict) {
                return Err(ParrotError::InvalidRegion(format!(
                    "entry parameter {i} of '{}' is used as {} but region inputs must be f32",
                    f.name(),
                    if ty == RegType::Int {
                        "an integer"
                    } else {
                        "both integer and float"
                    }
                )));
            }
        }
        Ok(RegionSpec {
            name: name.into(),
            program,
            entry,
            n_inputs,
            n_outputs,
            scratch_words: 0,
            input_range: None,
        })
    }

    /// Gives the region a private scratch memory (f32 words) for regions
    /// whose IR uses loads/stores internally, returning `self`.
    pub fn with_scratch(mut self, words: usize) -> Self {
        self.scratch_words = words;
        self
    }

    /// Declares that every region input lies in `[lo, hi]` (and is never
    /// NaN), returning `self`. The static analyses use this to prove
    /// scratch bounds and loop bounds and to derive finite fixed-point
    /// precision requirements; the declared range is a contract on the
    /// caller, not checked at runtime.
    pub fn with_input_range(mut self, lo: f32, hi: f32) -> Self {
        self.input_range = Some((lo, hi));
        self
    }

    /// Region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of `f32` inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of `f32` outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The region's IR program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The entry function id within [`program`](Self::program).
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Scratch memory size in words.
    pub fn scratch_words(&self) -> usize {
        self.scratch_words
    }

    /// The declared input range, if [`with_input_range`](Self::with_input_range)
    /// set one.
    pub fn input_range(&self) -> Option<(f32, f32)> {
        self.input_range
    }

    fn input_intervals(&self) -> Vec<FloatInterval> {
        match self.input_range {
            Some((lo, hi)) => vec![FloatInterval { lo, hi, nan: false }; self.n_inputs],
            None => Vec::new(),
        }
    }

    /// Executes the *original, precise* region.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn evaluate(&self, inputs: &[f32]) -> Result<Vec<f32>, ParrotError> {
        let args: Vec<Value> = inputs.iter().map(|&v| Value::F(v)).collect();
        let out = Interpreter::new(&self.program)
            .with_memory(self.scratch_words)
            .run(self.entry, &args)?;
        out.into_iter()
            .map(|v| v.as_f32().map_err(ParrotError::from))
            .collect()
    }

    /// Executes the precise region while emitting its dynamic trace (for
    /// baseline timing simulation).
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn evaluate_traced(
        &self,
        inputs: &[f32],
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<f32>, ParrotError> {
        let args: Vec<Value> = inputs.iter().map(|&v| Value::F(v)).collect();
        let out = Interpreter::new(&self.program)
            .with_memory(self.scratch_words)
            .run_traced(self.entry, &args, sink)?;
        out.outputs
            .into_iter()
            .map(|v| v.as_f32().map_err(ParrotError::from))
            .collect()
    }

    /// Static characterization of the region (Table 1's calls / loops /
    /// ifs / instruction counts).
    pub fn static_counts(&self) -> StaticCounts {
        static_counts(&self.program, self.entry)
    }

    /// Runs the region safety verifier (paper §3.1 admission criteria)
    /// over the entry function and every transitively called function,
    /// returning all findings regardless of severity. A declared input
    /// range tightens the interval analysis behind the proof-carrying
    /// lints.
    pub fn lint(&self) -> VerifyReport {
        verify_region_with_inputs(
            &self.program,
            self.entry.0,
            self.scratch_words,
            &self.input_intervals(),
        )
    }

    /// Static fixed-point precision requirements for the region (per
    /// input, output, and the float intermediate hull), derived from the
    /// interval analysis under the declared input range. Mirrors the NPU
    /// fixed-point datapath sizing question from the paper's §7.
    pub fn precision(&self) -> Option<PrecisionReport> {
        let params: Vec<AbsValue> = self
            .input_intervals()
            .into_iter()
            .map(AbsValue::float)
            .collect();
        PrecisionReport::for_region(
            &self.program,
            self.entry,
            &self.name,
            &params,
            self.scratch_words,
        )
    }

    /// The precision analysis aggregated into a telemetry summary, ready
    /// to embed in a [`telemetry::RunReport`]. Non-finite bounds become
    /// `None` (the JSON schema carries `null`, never ±∞); a missing entry
    /// function yields the all-default (unbounded, empty) summary.
    pub fn precision_summary(&self) -> telemetry::PrecisionSummary {
        let mut summary = telemetry::PrecisionSummary::default();
        let Some(report) = self.precision() else {
            return summary;
        };
        summary.bounded = report.bounded();
        summary.datapath_int_bits = report.datapath_int_bits();
        summary.datapath_frac_bits = report.datapath_frac_bits();
        summary.values = report
            .values
            .iter()
            .map(|v| telemetry::PrecisionRow {
                name: v.name.clone(),
                lo: v.lo.is_finite().then_some(v.lo),
                hi: v.hi.is_finite().then_some(v.hi),
                may_be_nan: v.may_be_nan,
                int_bits: v.int_bits,
                frac_bits: v.frac_bits,
            })
            .collect();
        summary
    }

    /// Verifies the region, failing on error-severity findings — programs
    /// the interpreter would fault on along some path. Warnings and infos
    /// are retained in the returned report. The compiler calls this
    /// before spending any time on observation or training.
    ///
    /// # Errors
    ///
    /// Returns [`ParrotError::InvalidRegion`] listing every
    /// error-severity diagnostic.
    pub fn verify(&self) -> Result<VerifyReport, ParrotError> {
        let report = self.lint();
        if report.has_errors() {
            let msgs: Vec<String> = report.errors().map(|d| d.to_string()).collect();
            return Err(ParrotError::InvalidRegion(format!(
                "region '{}' failed safety verification: {}",
                self.name,
                msgs.join("; ")
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_ir::FunctionBuilder;

    fn square_region() -> RegionSpec {
        let mut b = FunctionBuilder::new("sq", 1);
        let x = b.param(0);
        let y = b.fmul(x, x);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        RegionSpec::new("sq", p, f, 1, 1).unwrap()
    }

    #[test]
    fn evaluate_runs_the_region() {
        let r = square_region();
        assert_eq!(r.evaluate(&[3.0]).unwrap(), vec![9.0]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = FunctionBuilder::new("f", 2);
        let x = b.param(0);
        b.ret(&[x]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        // Declared 1 input but function takes 2.
        let err = RegionSpec::new("f", p, f, 1, 1).unwrap_err();
        assert!(matches!(err, ParrotError::InvalidRegion(_)));
    }

    #[test]
    fn counts_are_exposed() {
        let r = square_region();
        let c = r.static_counts();
        assert_eq!(c.instructions, 2);
        assert_eq!(c.function_calls, 0);
    }

    #[test]
    fn integer_typed_params_rejected() {
        // f(x) = x + 1 with integer arithmetic: not a float region.
        let mut b = FunctionBuilder::new("iinc", 1);
        let x = b.param(0);
        let one = b.consti(1);
        let y = b.iadd(x, one);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        let err = RegionSpec::new("iinc", p, f, 1, 1).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ParrotError::InvalidRegion(_)));
        assert!(msg.contains("used as an integer"), "msg: {msg}");
    }

    #[test]
    fn clean_region_verifies_with_no_findings() {
        let r = square_region();
        let report = r.verify().unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }

    #[test]
    fn verify_rejects_uninitialized_read() {
        use approx_ir::{Function, Inst, Reg};
        // r1 is read before any write; the builder would refuse this, so
        // assemble the function directly.
        let f = Function::new_unchecked(
            "bad",
            1,
            3,
            vec![Reg(2)],
            vec![
                Inst::FBin {
                    op: approx_ir::FBinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Inst::Ret { vals: vec![Reg(2)] },
            ],
        );
        let mut p = Program::new();
        let id = p.add_function(f);
        let r = RegionSpec::new("bad", p, id, 1, 1).unwrap();
        let err = r.verify().unwrap_err();
        assert!(err.to_string().contains("uninit-read"), "{err}");
    }
}

//! The compiler driver: observation → training → code generation.

use crate::observe::normalized_dataset;
use crate::{codegen, observe, ParrotError, RegionSpec};
use ann::{SearchOutcome, SearchParams, TopologySearch, TrainParams};
use approx_ir::analysis::VerifyReport;
use approx_ir::Function;
use npu::{NpuConfig, NpuParams, NpuSim};

/// Knobs for one Parrot compilation.
#[derive(Debug, Clone)]
pub struct CompileParams {
    /// Topology search space and training hyperparameters (paper defaults:
    /// ≤ 2 hidden layers, hidden sizes ∈ powers of two ≤ 32, 70/30 split).
    pub search: SearchParams,
    /// Target NPU sizing (for latency costs and capacity checks).
    pub npu: NpuParams,
    /// Cap on observation samples used for training (large observation
    /// logs are subsampled deterministically; the paper trains on e.g.
    /// one 512×512 image ≈ 260k sobel samples, far more than needed).
    pub max_training_samples: usize,
}

impl Default for CompileParams {
    fn default() -> Self {
        CompileParams {
            search: SearchParams {
                // Bound each candidate's training compute so compiling a
                // region stays interactive even for wide topologies.
                epoch_flops_budget: Some(1_500_000_000),
                ..SearchParams::default()
            },
            npu: NpuParams::default(),
            max_training_samples: 4_000,
        }
    }
}

impl CompileParams {
    /// A reduced-cost configuration for tests and quick demos: a smaller
    /// search space and fewer epochs, same pipeline.
    pub fn fast() -> Self {
        CompileParams {
            search: SearchParams {
                max_hidden_layers: 1,
                max_hidden_neurons: 8,
                train: TrainParams {
                    epochs: 120,
                    learning_rate: 0.2,
                    ..TrainParams::default()
                },
                ..SearchParams::default()
            },
            npu: NpuParams::default(),
            max_training_samples: 1_000,
        }
    }
}

/// The product of the Parrot transformation for one region.
#[derive(Debug, Clone)]
pub struct CompiledRegion {
    region_name: String,
    config: NpuConfig,
    outcome: SearchOutcome,
    invocation_stub: Function,
    config_loader: Function,
    npu_params: NpuParams,
    phases: Vec<telemetry::PhaseTiming>,
    lint: VerifyReport,
}

impl CompiledRegion {
    /// The trained NPU configuration (topology, weights, scaling ranges).
    pub fn config(&self) -> &NpuConfig {
        &self.config
    }

    /// The topology search outcome (selected candidate + all candidates).
    pub fn search_outcome(&self) -> &SearchOutcome {
        &self.outcome
    }

    /// Name of the region this replaces.
    pub fn region_name(&self) -> &str {
        &self.region_name
    }

    /// The replacement function: `enq.d` × inputs, `deq.d` × outputs.
    /// Add it to the application's program and redirect calls to it.
    pub fn invocation_stub(&self) -> &Function {
        &self.invocation_stub
    }

    /// The program-load configuration function (`enq.c` stream).
    pub fn config_loader(&self) -> &Function {
        &self.config_loader
    }

    /// Functionally evaluates the compiled region on raw application
    /// values (normalize → LUT-sigmoid MLP → denormalize). This is the
    /// value any NPU execution of the region produces.
    pub fn evaluate(&self, inputs: &[f32]) -> Vec<f32> {
        self.config.evaluate(inputs)
    }

    /// Builds a configured cycle-accurate NPU for timing simulation.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error if the network does not fit (cannot
    /// normally happen — compilation already checked).
    pub fn make_npu(&self) -> Result<NpuSim, npu::NpuError> {
        let mut sim = NpuSim::new(self.npu_params.clone());
        sim.configure(&self.config)?;
        Ok(sim)
    }

    /// Mean squared error of the selected network on the held-out test
    /// split (Table 1's "NN MSE" column).
    pub fn nn_mse(&self) -> f64 {
        self.outcome.best.test_mse
    }

    /// The NPU sizing this region was compiled for.
    pub fn npu_params(&self) -> &NpuParams {
        &self.npu_params
    }

    /// Wall-clock timings of the compilation phases (verify, observe,
    /// dataset, topology search + training, codegen), in execution order.
    pub fn phases(&self) -> &[telemetry::PhaseTiming] {
        &self.phases
    }

    /// Findings from the pre-compilation region safety verification.
    /// Never contains error-severity findings — those abort compilation
    /// before observation.
    pub fn lint_report(&self) -> &VerifyReport {
        &self.lint
    }

    /// The lint findings aggregated into a telemetry summary, ready to
    /// embed in a [`telemetry::RunReport`] or export into a
    /// [`telemetry::MetricsRegistry`].
    pub fn lint_summary(&self) -> telemetry::LintSummary {
        let mut summary = telemetry::LintSummary::default();
        for d in self.lint.diagnostics() {
            summary.record(&d.severity.to_string(), d.lint.name());
        }
        summary
    }

    /// Rebuilds a compiled region from a cached topology-search outcome
    /// and observation normalizers, skipping observation and training
    /// entirely. Verification, placement, and code generation — all cheap
    /// and deterministic — are re-run so the result is indistinguishable
    /// from a fresh [`ParrotCompiler::compile`] that selected the same
    /// network.
    ///
    /// This is the warm path of the experiment harness: the expensive
    /// artifacts (trained weights, normalizers) come from a
    /// content-addressed cache and only the stubs are regenerated.
    ///
    /// # Errors
    ///
    /// Fails if the region does not pass safety verification or the
    /// network does not fit `npu_params`.
    pub fn assemble(
        region: &RegionSpec,
        outcome: SearchOutcome,
        input_norm: ann::Normalizer,
        output_norm: ann::Normalizer,
        npu_params: NpuParams,
    ) -> Result<CompiledRegion, ParrotError> {
        let lint = region.verify()?;
        let config = NpuConfig::new(outcome.mlp.clone(), input_norm, output_norm);
        npu::Scheduler::new(npu_params.clone()).schedule(&config)?;
        let invocation_stub = codegen::build_invocation_stub(region.n_inputs(), region.n_outputs());
        let config_loader = codegen::build_config_loader(&config);
        Ok(CompiledRegion {
            region_name: region.name().to_string(),
            config,
            outcome,
            invocation_stub,
            config_loader,
            npu_params,
            phases: Vec::new(),
            lint,
        })
    }

    /// Builds a configured NPU with different hardware parameters (the
    /// PE-count sensitivity study, Figure 11).
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error if the network does not fit the
    /// given sizing — pass [`NpuParams::unbounded`] for sweeps below the
    /// default PE count.
    pub fn make_npu_with(&self, params: &NpuParams) -> Result<NpuSim, npu::NpuError> {
        let mut sim = NpuSim::new(params.clone());
        sim.configure(&self.config)?;
        Ok(sim)
    }
}

/// Runs the Parrot transformation.
///
/// After the programmer identifies a candidate region, "the Parrot
/// transformation is completely automatic and transparent": this type
/// performs observation, topology search, training, and code generation
/// with no further input.
#[derive(Debug, Clone, Default)]
pub struct ParrotCompiler {
    params: CompileParams,
}

impl ParrotCompiler {
    /// Creates a compiler with the given parameters.
    pub fn new(params: CompileParams) -> Self {
        ParrotCompiler { params }
    }

    /// The compiler's parameters.
    pub fn params(&self) -> &CompileParams {
        &self.params
    }

    /// Compiles `region` using `training_inputs` as the representative
    /// input set (paper: test-suite inputs or random inputs in the code's
    /// permissible ranges).
    ///
    /// # Errors
    ///
    /// Fails if observation, training, or NPU placement fails.
    pub fn compile(
        &self,
        region: &RegionSpec,
        training_inputs: &[Vec<f32>],
    ) -> Result<CompiledRegion, ParrotError> {
        self.compile_inner(region, training_inputs, None)
    }

    /// Like [`compile`](Self::compile), but skips the topology search and
    /// trains exactly `topology` (its input/output sizes must match the
    /// region). Useful when the topology is already known — e.g.
    /// replaying the paper's published Table 1 networks.
    ///
    /// # Errors
    ///
    /// Fails if observation or training fails, if the topology's arity
    /// does not match the region, or if it does not fit the NPU.
    pub fn compile_with_topology(
        &self,
        region: &RegionSpec,
        training_inputs: &[Vec<f32>],
        topology: ann::Topology,
    ) -> Result<CompiledRegion, ParrotError> {
        if topology.inputs() != region.n_inputs() || topology.outputs() != region.n_outputs() {
            return Err(ParrotError::InvalidRegion(format!(
                "topology {topology} does not match region arity {}x{}",
                region.n_inputs(),
                region.n_outputs()
            )));
        }
        self.compile_inner(region, training_inputs, Some(topology))
    }

    fn compile_inner(
        &self,
        region: &RegionSpec,
        training_inputs: &[Vec<f32>],
        forced: Option<ann::Topology>,
    ) -> Result<CompiledRegion, ParrotError> {
        let mut phases = Vec::new();

        // 0. Region safety verification (paper §3.1 admission): refuse
        // regions the interpreter would fault on before spending any time
        // observing or training them.
        let span = telemetry::span("parrot::compiler", "verify");
        let lint = region.verify()?;
        phases.push(span.finish());

        // 1. Code observation.
        let span = telemetry::span("parrot::compiler", "observe");
        let obs = observe(region, training_inputs)?;
        phases.push(span.finish());

        // 2. Topology search + training on normalized data.
        let span = telemetry::span("parrot::compiler", "dataset");
        let full = normalized_dataset(&obs);
        let data = full.subsample(
            self.params.max_training_samples,
            subsample_seed(self.params.search.seed),
        );
        phases.push(span.finish());

        let span = telemetry::span("parrot::compiler", "topology_search");
        let npu_params = self.params.npu.clone();
        let search = TopologySearch::new(self.params.search.clone());
        // Candidates that do not fit the NPU's structures are excluded
        // from the search (the hardware constrains deployable networks).
        let cost = |topology: &ann::Topology| npu::try_estimate_latency(topology, &npu_params).ok();
        let outcome = match forced {
            Some(t) => search.run_with_candidates(&data, vec![t], &cost)?,
            None => search.run(&data, &cost)?,
        };
        phases.push(span.finish());

        // 3. Code generation.
        let span = telemetry::span("parrot::compiler", "codegen");
        let config = NpuConfig::new(
            outcome.mlp.clone(),
            obs.input_norm.clone(),
            obs.output_norm.clone(),
        );
        // Validate placement eagerly so compile fails rather than run time.
        npu::Scheduler::new(npu_params.clone()).schedule(&config)?;
        let invocation_stub = codegen::build_invocation_stub(region.n_inputs(), region.n_outputs());
        let config_loader = codegen::build_config_loader(&config);
        phases.push(span.finish());

        Ok(CompiledRegion {
            region_name: region.name().to_string(),
            config,
            outcome,
            invocation_stub,
            config_loader,
            npu_params,
            phases,
            lint,
        })
    }
}

/// Derives the observation-log subsampling seed from the search's root
/// seed, so every random choice in a compilation traces back to one seed.
pub fn subsample_seed(root: u64) -> u64 {
    ann::seed::mix(root, 0x7ea1_5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_ir::{FunctionBuilder, Program};

    fn smooth_region() -> RegionSpec {
        // f(x, y) = 0.5 * (x + y)
        let mut b = FunctionBuilder::new("avg", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.fadd(x, y);
        let half = b.constf(0.5);
        let r = b.fmul(s, half);
        b.ret(&[r]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        RegionSpec::new("avg", p, f, 2, 1).unwrap()
    }

    fn grid_inputs() -> Vec<Vec<f32>> {
        let mut v = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                v.push(vec![i as f32 / 19.0, j as f32 / 19.0]);
            }
        }
        v
    }

    #[test]
    fn compile_produces_accurate_network() {
        let region = smooth_region();
        let compiled = ParrotCompiler::new(CompileParams::fast())
            .compile(&region, &grid_inputs())
            .unwrap();
        assert!(compiled.nn_mse() < 0.01, "mse = {}", compiled.nn_mse());
        // Spot check accuracy on unseen input.
        let approx = compiled.evaluate(&[0.33, 0.77]);
        let precise = region.evaluate(&[0.33, 0.77]).unwrap();
        assert!((approx[0] - precise[0]).abs() < 0.1);
    }

    #[test]
    fn compile_emits_stub_and_loader() {
        let region = smooth_region();
        let compiled = ParrotCompiler::new(CompileParams::fast())
            .compile(&region, &grid_inputs())
            .unwrap();
        assert_eq!(compiled.invocation_stub().n_params(), 2);
        assert_eq!(compiled.invocation_stub().n_rets(), 1);
        assert!(compiled.config_loader().len() > 10);
        // The stub+config reproduce evaluate() through a real NPU.
        let mut sim = compiled.make_npu().unwrap();
        let got = sim.evaluate_invocation(&[0.4, 0.6]).unwrap();
        let want = compiled.evaluate(&[0.4, 0.6]);
        assert!((got[0] - want[0]).abs() < 1e-6);
    }

    #[test]
    fn compile_records_phase_timings() {
        let region = smooth_region();
        let compiled = ParrotCompiler::new(CompileParams::fast())
            .compile(&region, &grid_inputs())
            .unwrap();
        let names: Vec<&str> = compiled.phases().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["verify", "observe", "dataset", "topology_search", "codegen"]
        );
        // Search+training dominates compilation for any real region.
        let search = &compiled.phases()[3];
        assert!(search.elapsed_us > 0);
    }

    #[test]
    fn compile_rejects_unsafe_region_before_observing() {
        use approx_ir::{Function, Inst, Reg};
        // Reads r1 uninitialized: the verifier must refuse the region
        // before observation ever runs it.
        let f = Function::new_unchecked(
            "bad",
            1,
            3,
            vec![Reg(2)],
            vec![
                Inst::FBin {
                    op: approx_ir::FBinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Inst::Ret { vals: vec![Reg(2)] },
            ],
        );
        let mut p = Program::new();
        let id = p.add_function(f);
        let region = RegionSpec::new("bad", p, id, 1, 1).unwrap();
        let err = ParrotCompiler::new(CompileParams::fast())
            .compile(&region, &[vec![1.0]])
            .unwrap_err();
        assert!(matches!(err, ParrotError::InvalidRegion(_)), "{err}");
        assert!(err.to_string().contains("uninit-read"), "{err}");
    }

    #[test]
    fn compile_surfaces_clean_lint_report() {
        let region = smooth_region();
        let compiled = ParrotCompiler::new(CompileParams::fast())
            .compile(&region, &grid_inputs())
            .unwrap();
        assert!(compiled.lint_report().is_clean());
        assert!(compiled.lint_summary().is_clean());
    }

    #[test]
    fn compile_requires_training_data() {
        let region = smooth_region();
        let err = ParrotCompiler::new(CompileParams::fast())
            .compile(&region, &[])
            .unwrap_err();
        assert!(matches!(err, ParrotError::NoTrainingData));
    }
}

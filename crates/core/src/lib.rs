//! The **Parrot transformation**: train a neural network to mimic a region
//! of imperative code, then replace the region with an NPU invocation.
//!
//! This is the primary contribution of *Neural Acceleration for
//! General-Purpose Approximate Programs* (MICRO 2012). The workflow
//! (paper Figure 1) is:
//!
//! 1. **Programming** — the developer marks a hot, pure, fixed-arity,
//!    approximable function. Here that is constructing a [`RegionSpec`]
//!    (the stand-in for the paper's C `[[PARROT]]` annotation).
//! 2. **Code observation** — [`observe`] runs the instrumented region on
//!    representative inputs, logging input–output pairs and value ranges.
//! 3. **Training** — [`ParrotCompiler::compile`] performs the
//!    cross-validated topology search and backpropagation training over
//!    MLPs with at most two hidden layers.
//! 4. **Code generation** — the compiler emits an [`npu::NpuConfig`] plus
//!    replacement IR: a *config loader* (a series of `enq.c` instructions
//!    run at program load) and an *invocation stub* (`enq.d` × inputs,
//!    `deq.d` × outputs) that replaces calls to the original function.
//! 5. **Execution** — the transformed program invokes the NPU; the
//!    [`NpuRuntime`] adapter answers the IR interpreter's `NpuPort` with
//!    a fast batched functional model (bit-identical to the
//!    cycle-accurate simulator, which timed runs attach separately).
//!
//! # Example: transform a small function end to end
//!
//! ```
//! use approx_ir::{FunctionBuilder, Program};
//! use parrot::{CompileParams, ParrotCompiler, RegionSpec};
//!
//! // The approximable region: f(x, y) = sqrt(x*x + y*y).
//! let mut b = FunctionBuilder::new("norm2", 2);
//! let (x, y) = (b.param(0), b.param(1));
//! let xx = b.fmul(x, x);
//! let yy = b.fmul(y, y);
//! let s = b.fadd(xx, yy);
//! let r = b.fsqrt(s);
//! b.ret(&[r]);
//! let mut program = Program::new();
//! let entry = program.add_function(b.build()?);
//! let region = RegionSpec::new("norm2", program, entry, 2, 1)?;
//!
//! // Representative training inputs (the paper's "code observation").
//! let inputs: Vec<Vec<f32>> = (0..300)
//!     .map(|i| vec![(i % 17) as f32 / 17.0, (i % 23) as f32 / 23.0])
//!     .collect();
//!
//! let compiled = ParrotCompiler::new(CompileParams::fast())
//!     .compile(&region, &inputs)?;
//! let approx = compiled.evaluate(&[0.6, 0.8]);
//! assert!((approx[0] - 1.0).abs() < 0.25); // imprecise but close
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
mod compiler;
mod error;
mod guard;
mod observe;
pub mod quality;
mod region;
mod runtime;

pub use compiler::{subsample_seed, CompileParams, CompiledRegion, ParrotCompiler};
pub use error::ParrotError;
pub use guard::{ErrorBudget, ErrorSampler, ExecPath, GuardStats, GuardedRegion, RangeGuard};
pub use observe::{observe, Observation};
pub use region::RegionSpec;
pub use runtime::NpuRuntime;

//! Application-level output quality metrics (paper Section 7.1, Table 1's
//! "Error Metric" column, and the Figure 6 error CDF).

use serde::{Deserialize, Serialize};

/// Mean relative error between reference and approximate outputs,
/// element-wise (used by `fft` and `inversek2j`).
///
/// Near-zero reference elements are guarded with `epsilon` so a tiny
/// absolute error on a value near zero does not explode the metric.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mean_relative_error(reference: &[f32], approx: &[f32], epsilon: f32) -> f64 {
    assert_eq!(reference.len(), approx.len(), "output length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&r, &a) in reference.iter().zip(approx) {
        let denom = r.abs().max(epsilon);
        total += ((a - r).abs() / denom) as f64;
    }
    total / reference.len() as f64
}

/// Per-element relative errors (for CDF plots).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn relative_errors(reference: &[f32], approx: &[f32], epsilon: f32) -> Vec<f64> {
    assert_eq!(reference.len(), approx.len(), "output length mismatch");
    reference
        .iter()
        .zip(approx)
        .map(|(&r, &a)| ((a - r).abs() / r.abs().max(epsilon)) as f64)
        .collect()
}

/// Misclassification rate between boolean decisions (used by `jmeint`:
/// "calculates whether two three-dimensional triangles intersect; we
/// report the misclassification rate").
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn miss_rate(reference: &[bool], approx: &[bool]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "decision length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let wrong = reference.iter().zip(approx).filter(|(r, a)| r != a).count();
    wrong as f64 / reference.len() as f64
}

/// Average root-mean-square image difference, normalized by the value
/// range so 1.0 means "maximally different" (used by `jpeg`, `kmeans`,
/// and `sobel`).
///
/// # Panics
///
/// Panics if the slices differ in length or `range` is not positive.
pub fn image_rmse(reference: &[f32], approx: &[f32], range: f32) -> f64 {
    assert_eq!(reference.len(), approx.len(), "image size mismatch");
    assert!(range > 0.0, "value range must be positive");
    if reference.is_empty() {
        return 0.0;
    }
    let mut sum_sq = 0.0f64;
    for (&r, &a) in reference.iter().zip(approx) {
        let d = ((a - r) / range) as f64;
        sum_sq += d * d;
    }
    (sum_sq / reference.len() as f64).sqrt()
}

/// Per-element absolute image differences normalized by range (CDF input).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn image_errors(reference: &[f32], approx: &[f32], range: f32) -> Vec<f64> {
    assert_eq!(reference.len(), approx.len(), "image size mismatch");
    reference
        .iter()
        .zip(approx)
        .map(|(&r, &a)| (((a - r) / range).abs()) as f64)
        .collect()
}

/// A cumulative distribution of per-output-element errors (Figure 6:
/// "a point (x, y) indicates that y fraction of the output elements see
/// error less than or equal to x").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorCdf {
    sorted: Vec<f64>,
}

impl ErrorCdf {
    /// Builds a CDF from raw per-element errors.
    pub fn from_errors(mut errors: Vec<f64>) -> Self {
        errors.sort_by(f64::total_cmp);
        ErrorCdf { sorted: errors }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no elements.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of elements with error ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&e| e <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The error at a given quantile in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((self.sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.sorted[idx]
    }

    /// Samples the CDF at the given error levels, yielding `(x, y)` pairs
    /// ready for plotting (the paper samples 0% to 100% in 10% steps).
    pub fn sample(&self, levels: &[f64]) -> Vec<(f64, f64)> {
        levels
            .iter()
            .map(|&x| (x, self.fraction_below(x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_relative_error_basics() {
        let e = mean_relative_error(&[2.0, 4.0], &[2.2, 3.6], 1e-6);
        assert!((e - 0.1).abs() < 1e-6);
        assert_eq!(mean_relative_error(&[], &[], 1e-6), 0.0);
    }

    #[test]
    fn epsilon_guards_zero_reference() {
        let e = mean_relative_error(&[0.0], &[0.001], 0.01);
        assert!((e - 0.1).abs() < 1e-6);
    }

    #[test]
    fn miss_rate_counts_disagreements() {
        let r = [true, false, true, true];
        let a = [true, true, true, false];
        assert!((miss_rate(&r, &a) - 0.5).abs() < 1e-9);
        assert_eq!(miss_rate(&[], &[]), 0.0);
    }

    #[test]
    fn image_rmse_is_normalized() {
        // Constant error of 25.5 on a 0..255 image = 0.1 normalized.
        let r: Vec<f32> = vec![100.0; 50];
        let a: Vec<f32> = vec![125.5; 50];
        assert!((image_rmse(&r, &a, 255.0) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn identical_images_have_zero_error() {
        let img: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(image_rmse(&img, &img, 255.0), 0.0);
    }

    #[test]
    fn cdf_fractions_and_quantiles() {
        let cdf = ErrorCdf::from_errors(vec![0.05, 0.01, 0.2, 0.02, 0.0]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.fraction_below(0.02) - 0.6).abs() < 1e-9);
        assert!((cdf.fraction_below(1.0) - 1.0).abs() < 1e-9);
        assert_eq!(cdf.quantile(1.0), 0.2);
        assert_eq!(cdf.quantile(0.0), 0.0);
    }

    #[test]
    fn cdf_sampling_matches_paper_plot_shape() {
        // Most elements low-error, a few high: CDF rises steeply then
        // flattens — the Figure 6 shape.
        let mut errors = vec![0.01; 90];
        errors.extend(vec![0.5; 10]);
        let cdf = ErrorCdf::from_errors(errors);
        let pts = cdf.sample(&[0.0, 0.1, 1.0]);
        assert!((pts[1].1 - 0.9).abs() < 1e-9);
        assert!((pts[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = ErrorCdf::from_errors(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mean_relative_error(&[1.0], &[1.0, 2.0], 1e-6);
    }
}

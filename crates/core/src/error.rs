use std::error::Error;
use std::fmt;

/// Errors from the Parrot transformation pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParrotError {
    /// The region violates a criterion from paper Section 3.1 (fixed-size
    /// pure function with declared arity).
    InvalidRegion(String),
    /// Executing the region during observation failed.
    Execution(approx_ir::IrError),
    /// Training or topology search failed.
    Training(ann::AnnError),
    /// The trained network could not be placed on the NPU.
    Npu(npu::NpuError),
    /// No training inputs were provided.
    NoTrainingData,
}

impl fmt::Display for ParrotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParrotError::InvalidRegion(why) => write!(f, "invalid candidate region: {why}"),
            ParrotError::Execution(e) => write!(f, "region execution failed: {e}"),
            ParrotError::Training(e) => write!(f, "training failed: {e}"),
            ParrotError::Npu(e) => write!(f, "npu code generation failed: {e}"),
            ParrotError::NoTrainingData => write!(f, "no training inputs provided"),
        }
    }
}

impl Error for ParrotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParrotError::Execution(e) => Some(e),
            ParrotError::Training(e) => Some(e),
            ParrotError::Npu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<approx_ir::IrError> for ParrotError {
    fn from(e: approx_ir::IrError) -> Self {
        ParrotError::Execution(e)
    }
}

impl From<ann::AnnError> for ParrotError {
    fn from(e: ann::AnnError) -> Self {
        ParrotError::Training(e)
    }
}

impl From<npu::NpuError> for ParrotError {
    fn from(e: npu::NpuError) -> Self {
        ParrotError::Npu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let e = ParrotError::from(ann::AnnError::EmptyDataset);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("training failed"));
    }
}

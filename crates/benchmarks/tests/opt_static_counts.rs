//! The CFG-aware optimizer against the real Table 1 regions: optimizing
//! a region must never grow its static footprint and must preserve its
//! functional behaviour bit-for-bit (constant folding performs the same
//! `f32` arithmetic the interpreter would).

use approx_ir::{opt, Program};
use benchmarks::{all_benchmarks, benchmark_by_name, Scale};
use parrot::RegionSpec;

/// Rebuilds `region` with every function run through the optimizer.
/// Function ids are dense and order-preserved, so `Call` targets and the
/// entry id survive unchanged.
fn optimized_region(region: &RegionSpec) -> RegionSpec {
    let mut p = Program::new();
    for f in region.program().functions() {
        p.add_function(opt::optimize(f));
    }
    RegionSpec::new(
        region.name(),
        p,
        region.entry(),
        region.n_inputs(),
        region.n_outputs(),
    )
    .expect("optimized region keeps its arity")
    .with_scratch(region.scratch_words())
}

#[test]
fn optimizer_never_grows_any_region_and_preserves_outputs() {
    let scale = Scale::small();
    for b in all_benchmarks() {
        let region = b.region();
        let before = region.static_counts();
        let optimized = optimized_region(&region);
        let after = optimized.static_counts();
        eprintln!(
            "{}: {} -> {} insts",
            b.name(),
            before.instructions,
            after.instructions
        );
        assert!(
            after.instructions <= before.instructions,
            "{}: optimizer grew the region {} -> {}",
            b.name(),
            before.instructions,
            after.instructions
        );
        assert!(after.loops <= before.loops, "{}: loops grew", b.name());
        for input in b.training_inputs(&scale).iter().take(8) {
            let want = region.evaluate(input).expect("precise region runs");
            let got = optimized.evaluate(input).expect("optimized region runs");
            assert_eq!(want, got, "{}: output changed for {input:?}", b.name());
        }
    }
}

#[test]
fn optimizer_verifies_clean_after_rewriting() {
    // The optimizer must not introduce findings the safety verifier
    // rejects: every rewritten region still lints without errors.
    for b in all_benchmarks() {
        let optimized = optimized_region(&b.region());
        let report = optimized.lint();
        assert!(
            !report.has_errors(),
            "{}: optimizer broke the region: {:?}",
            b.name(),
            report.errors().collect::<Vec<_>>()
        );
    }
}

#[test]
fn sobel_region_static_counts_before_and_after() {
    // Pinned before/after counts: the hand-written sobel region is
    // already minimal, so the optimizer must leave it exactly alone —
    // no new instructions, and crucially no deletions (its single
    // cross-block `mov` clamp used to look dead to the straight-line
    // pass's over-approximation).
    let region = benchmark_by_name("sobel").unwrap().region();
    let before = region.static_counts();
    let after = optimized_region(&region).static_counts();
    assert_eq!(before.instructions, 24);
    assert_eq!(before.ifs, 1);
    assert_eq!(after.instructions, 24);
    assert_eq!(after.ifs, 1);
}

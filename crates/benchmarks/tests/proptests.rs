//! Property-based tests: each benchmark's IR kernel agrees with its
//! independent Rust reference over random inputs, and the codecs respect
//! their mathematical invariants.

use benchmarks::jpeg::codec;
use benchmarks::{fft, inversek2j, jmeint, kmeans, sobel, Benchmark};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The IR sobel region equals the Rust reference on any window.
    #[test]
    fn sobel_ir_matches_reference(window in proptest::array::uniform9(0.0f32..1.0)) {
        let region = sobel::Sobel.region();
        let got = region.evaluate(&window).unwrap()[0];
        let want = sobel::sobel_reference(&window);
        prop_assert!((got - want).abs() < 1e-6);
    }

    /// Inverse kinematics: for any reachable target, IK then FK returns to
    /// the target (both in Rust and through the IR region).
    #[test]
    fn ik_round_trips_through_fk(
        th1 in 0.05f32..1.5,
        th2 in 0.05f32..3.0,
    ) {
        let (x, y) = inversek2j::forward_kinematics(th1, th2);
        let region = inversek2j::InverseK2j.region();
        let out = region.evaluate(&[x, y]).unwrap();
        let (fx, fy) = inversek2j::forward_kinematics(out[0], out[1]);
        prop_assert!((fx - x).abs() < 1e-3 && (fy - y).abs() < 1e-3,
            "target ({x},{y}) -> ({fx},{fy})");
    }

    /// The IR Möller test agrees with the Rust reference for arbitrary
    /// triangles (not just the benchmark's input distribution).
    #[test]
    fn jmeint_ir_matches_reference(coords in proptest::collection::vec(-2.0f32..2.0, 18)) {
        let region = jmeint::Jmeint.region();
        let out = region.evaluate(&coords).unwrap();
        let mut v = [[0.0f32; 3]; 3];
        let mut u = [[0.0f32; 3]; 3];
        for k in 0..3 {
            for c in 0..3 {
                v[k][c] = coords[3 * k + c];
                u[k][c] = coords[9 + 3 * k + c];
            }
        }
        let want = jmeint::tri_tri_intersects(&v, &u);
        prop_assert_eq!(out[0] > out[1], want);
    }

    /// Triangle intersection is symmetric: swapping the triangles never
    /// changes the answer.
    #[test]
    fn jmeint_is_symmetric(coords in proptest::collection::vec(-1.0f32..1.0, 18)) {
        let mut v = [[0.0f32; 3]; 3];
        let mut u = [[0.0f32; 3]; 3];
        for k in 0..3 {
            for c in 0..3 {
                v[k][c] = coords[3 * k + c];
                u[k][c] = coords[9 + 3 * k + c];
            }
        }
        prop_assert_eq!(
            jmeint::tri_tri_intersects(&v, &u),
            jmeint::tri_tri_intersects(&u, &v)
        );
    }

    /// A triangle always intersects itself.
    #[test]
    fn jmeint_self_intersection(coords in proptest::collection::vec(-1.0f32..1.0, 9)) {
        let mut v = [[0.0f32; 3]; 3];
        for k in 0..3 {
            for c in 0..3 {
                v[k][c] = coords[3 * k + c];
            }
        }
        // Skip degenerate (near-collinear) triangles.
        let e1 = [v[1][0]-v[0][0], v[1][1]-v[0][1], v[1][2]-v[0][2]];
        let e2 = [v[2][0]-v[0][0], v[2][1]-v[0][1], v[2][2]-v[0][2]];
        let n = [
            e1[1]*e2[2]-e1[2]*e2[1],
            e1[2]*e2[0]-e1[0]*e2[2],
            e1[0]*e2[1]-e1[1]*e2[0],
        ];
        prop_assume!(n.iter().map(|x| x*x).sum::<f32>() > 1e-4);
        prop_assert!(jmeint::tri_tri_intersects(&v, &v));
    }

    /// The kmeans distance region is a metric on random points: symmetric,
    /// non-negative, zero on identity.
    #[test]
    fn kmeans_distance_is_a_metric(p in proptest::array::uniform3(0.0f32..1.0),
                                   q in proptest::array::uniform3(0.0f32..1.0)) {
        let region = kmeans::Kmeans.region();
        let d_pq = region.evaluate(&[p[0], p[1], p[2], q[0], q[1], q[2]]).unwrap()[0];
        let d_qp = region.evaluate(&[q[0], q[1], q[2], p[0], p[1], p[2]]).unwrap()[0];
        let d_pp = region.evaluate(&[p[0], p[1], p[2], p[0], p[1], p[2]]).unwrap()[0];
        prop_assert!((d_pq - d_qp).abs() < 1e-6);
        prop_assert!(d_pq >= 0.0);
        prop_assert!(d_pp.abs() < 1e-6);
    }

    /// FFT twiddle outputs always lie on the unit circle.
    #[test]
    fn fft_twiddle_on_unit_circle(f in 0.0f32..0.5) {
        let region = fft::Fft.region();
        let out = region.evaluate(&[f]).unwrap();
        let norm = out[0] * out[0] + out[1] * out[1];
        prop_assert!((norm - 1.0).abs() < 1e-5);
    }

    /// The reference FFT is linear: FFT(a·x) = a·FFT(x).
    #[test]
    fn fft_is_linear(scale in 0.1f32..5.0, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sig: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut re1 = sig.clone();
        let mut im1 = vec![0.0; 32];
        fft::fft_reference(&mut re1, &mut im1);
        let mut re2: Vec<f32> = sig.iter().map(|v| v * scale).collect();
        let mut im2 = vec![0.0; 32];
        fft::fft_reference(&mut re2, &mut im2);
        for i in 0..32 {
            prop_assert!((re2[i] - re1[i] * scale).abs() < 1e-2 * scale.max(1.0));
            prop_assert!((im2[i] - im1[i] * scale).abs() < 1e-2 * scale.max(1.0));
        }
    }

    /// JPEG: DCT+quant then dequant+IDCT stays within the quantization
    /// error bound for any block.
    #[test]
    fn jpeg_round_trip_error_is_bounded(block in proptest::collection::vec(0.0f32..255.0, 64)) {
        let mut arr = [0.0f32; 64];
        arr.copy_from_slice(&block);
        let coeffs = codec::dct_quantize(&arr);
        let back = codec::dequantize_idct(&coeffs);
        // Worst-case quantization error: half a quant step per
        // coefficient, concentrated; generous pixel-domain bound.
        for (a, b) in arr.iter().zip(&back) {
            prop_assert!((a - b).abs() < 120.0, "{a} vs {b}");
        }
        let rmse: f32 = arr.iter().zip(&back).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt() / 8.0;
        prop_assert!(rmse < 32.0, "rmse {rmse}");
    }

    /// The entropy coder produces a decodable, well-formed JFIF container
    /// for arbitrary 16x16 coefficient content.
    #[test]
    fn jfif_always_well_formed(blocks in proptest::collection::vec(-40.0f32..40.0, 256)) {
        let quantized: Vec<f32> = blocks.iter().map(|v| v.round()).collect();
        let file = codec::encode_jfif(&quantized, 16);
        prop_assert_eq!(&file[..2], &[0xFF, 0xD8]);
        prop_assert_eq!(&file[file.len() - 2..], &[0xFF, 0xD9]);
        // Entropy segment never contains a bare 0xFF followed by a marker
        // byte other than a legal one (stuffing property): every 0xFF in
        // the scan is followed by 0x00 or a marker >= 0xD0.
        let sos = file.windows(2).position(|w| w == [0xFF, 0xDA]).unwrap();
        let scan = &file[sos + 10..file.len() - 2];
        for w in scan.windows(2) {
            if w[0] == 0xFF {
                prop_assert!(w[1] == 0x00 || w[1] >= 0xD0, "unstuffed FF {:02X}", w[1]);
            }
        }
    }
}

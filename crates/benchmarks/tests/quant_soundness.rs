//! Fixed-point soundness on the real Table 1 regions.
//!
//! For every benchmark region, a fully statically-scaled quantized NPU
//! ([`QuantizedNpu::with_static_scaling`]) — boundary I/O formats and
//! scaling ranges from the precision analysis's proven `in<k>`/`out<k>`
//! hulls, datapath accumulator from its declared Qm.n — runs real
//! training inputs. The test asserts the quantization contract: every
//! boundary value stays inside its declared hull (within one
//! quantization step), and no datapath accumulation saturates, i.e.
//! every quantized intermediate is representable in the declared format.

use ann::{Mlp, Normalizer, QFormat, QuantScratch, Topology};
use benchmarks::{all_benchmarks, Scale};
use npu::{FormatSource, NpuConfig, QuantizedNpu};

const INPUTS_PER_REGION: usize = 48;

/// Builds an observed-range configuration for a region: a seeded paper
/// topology plus normalizers covering the training data (what the
/// compiler's observation phase would produce). `with_static_scaling`
/// then replaces every proven-bounded range with the analysis hull.
fn observed_config(
    b: &dyn benchmarks::Benchmark,
    inputs: &[Vec<f32>],
) -> (NpuConfig, Vec<Vec<f32>>) {
    let region = b.region();
    let n_in = region.n_inputs();
    let n_out = region.n_outputs();
    let mut in_ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); n_in];
    let mut out_ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); n_out];
    let mut outputs = Vec::new();
    for input in inputs {
        for (r, &v) in in_ranges.iter_mut().zip(input) {
            r.0 = r.0.min(v);
            r.1 = r.1.max(v);
        }
        let out = region
            .evaluate(input)
            .expect("region must run on training inputs");
        for (r, &v) in out_ranges.iter_mut().zip(&out) {
            r.0 = r.0.min(v);
            r.1 = r.1.max(v);
        }
        outputs.push(out);
    }
    let topology = Topology::new(b.paper_topology()).unwrap();
    let config = NpuConfig::new(
        Mlp::seeded(topology, 42),
        Normalizer::new(in_ranges),
        Normalizer::new(out_ranges),
    );
    (config, outputs)
}

#[test]
fn quantized_boundary_values_stay_inside_declared_hulls() {
    let scale = Scale::small();
    for b in all_benchmarks() {
        let region = b.region();
        let report = region
            .precision()
            .expect("every Table 1 region has a precision report");
        let inputs: Vec<Vec<f32>> = b
            .training_inputs(&scale)
            .into_iter()
            .take(INPUTS_PER_REGION)
            .collect();
        let (config, _) = observed_config(b.as_ref(), &inputs);

        let bounded_hull = |name: String| {
            report
                .values
                .iter()
                .find(|v| v.name == name && v.bounded())
                .map(|v| (v.lo, v.hi))
        };

        for bits in [8u8, 16] {
            let quant = QuantizedNpu::with_static_scaling(&config, &report, bits);
            let mut scratch = QuantScratch::new();
            for input in &inputs {
                let inv = quant.evaluate_with(input, &mut scratch);
                assert_eq!(
                    inv.datapath.saturated,
                    0,
                    "{} int{bits}: datapath accumulation left the declared {:?} format \
                     (max |acc| {})",
                    b.name(),
                    quant.datapath(),
                    inv.datapath.max_acc_abs
                );
                for (k, &x) in inv.boundary_inputs.iter().enumerate() {
                    if let Some((lo, hi)) = bounded_hull(format!("in{k}")) {
                        let step = quant.input_formats()[k].step() as f32;
                        assert!(
                            x >= lo - step && x <= hi + step,
                            "{} int{bits}: boundary input {k} = {x} outside proven hull \
                             [{lo}, {hi}] (step {step})",
                            b.name()
                        );
                    }
                }
                for (k, &y) in inv.outputs.iter().enumerate() {
                    if let Some((lo, hi)) = bounded_hull(format!("out{k}")) {
                        let step = quant.output_formats()[k].step() as f32;
                        assert!(
                            y >= lo - step && y <= hi + step,
                            "{} int{bits}: boundary output {k} = {y} outside proven hull \
                             [{lo}, {hi}] (step {step})",
                            b.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sobel_static_scaling_pins_q7_23() {
    // The analysis proves sobel's datapath fits Q7.23; the statically
    // scaled quantized NPU must adopt exactly that format, from the
    // static source (no observed fallback).
    let b = benchmarks::benchmark_by_name("sobel").expect("sobel exists");
    let region = b.region();
    let report = region.precision().unwrap();
    let inputs: Vec<Vec<f32>> = b
        .training_inputs(&Scale::small())
        .into_iter()
        .take(INPUTS_PER_REGION)
        .collect();
    let (config, _) = observed_config(b.as_ref(), &inputs);
    let quant = QuantizedNpu::with_static_scaling(&config, &report, 16);
    assert_eq!(quant.datapath(), QFormat::new(7, 23));
    assert_eq!(quant.source(), FormatSource::Static);
}

#[test]
fn quantized_int16_tracks_the_region_within_quantization_noise() {
    // Not an accuracy claim about the (untrained) network — a contract
    // check that the int16 quantized pipeline tracks its own f32 oracle
    // (same network, same normalizers) to within a small multiple of the
    // boundary quantization steps on every region.
    let scale = Scale::small();
    for b in all_benchmarks() {
        let inputs: Vec<Vec<f32>> = b
            .training_inputs(&scale)
            .into_iter()
            .take(INPUTS_PER_REGION)
            .collect();
        let (config, _) = observed_config(b.as_ref(), &inputs);
        let report = b.region().precision().unwrap();
        // Rebuild the hull-scaled configuration exactly like
        // `with_static_scaling` does, so the f32 oracle shares the
        // quantized path's normalizers and the only difference left is
        // quantization itself.
        let hull = |name: String, fallback: (f32, f32)| {
            report
                .values
                .iter()
                .find(|v| v.name == name && v.bounded())
                .map(|v| (v.lo, v.hi))
                .unwrap_or(fallback)
        };
        let oracle = NpuConfig::new(
            config.mlp().clone(),
            Normalizer::new(
                config
                    .input_norm()
                    .ranges()
                    .iter()
                    .enumerate()
                    .map(|(k, &r)| hull(format!("in{k}"), r))
                    .collect(),
            ),
            Normalizer::new(
                config
                    .output_norm()
                    .ranges()
                    .iter()
                    .enumerate()
                    .map(|(k, &r)| hull(format!("out{k}"), r))
                    .collect(),
            ),
        );
        let quant = QuantizedNpu::new(&oracle, Some(&report), 16);
        let mut scratch = QuantScratch::new();
        for input in &inputs {
            let inv = quant.evaluate_with(input, &mut scratch);
            let want = oracle.evaluate(&inv.boundary_inputs);
            for (k, (&q, &f)) in inv.outputs.iter().zip(&want).enumerate() {
                let span = {
                    let (lo, hi) = config.output_norm().ranges()[k];
                    if hi > lo {
                        hi - lo
                    } else {
                        1.0
                    }
                };
                assert!(
                    (q - f).abs() / span < 0.02,
                    "{}: int16 output {k} drifted {:.4} of span from the f32 oracle",
                    b.name(),
                    (q - f).abs() / span
                );
            }
        }
    }
}

//! Interval-analysis soundness on the real Table 1 regions.
//!
//! For every benchmark region, the checked mirror interpreter
//! ([`run_checked`]) executes real training inputs while asserting each
//! concrete register value lies inside the interval the static analysis
//! inferred — under the region's *declared* input range where one exists
//! (jpeg's 8-bit pixels, sobel's normalized window), under ⊤ floats
//! otherwise. The mirror's outputs are cross-validated bit-for-bit
//! against the production interpreter, so a divergence in either the
//! analysis or the mirror fails loudly.

use approx_ir::analysis::{run_checked, AbsValue, FloatInterval};
use approx_ir::{Interpreter, Value};
use benchmarks::{all_benchmarks, Scale};

const BUDGET: u64 = 2_000_000;
const INPUTS_PER_REGION: usize = 12;

#[test]
fn concrete_region_values_stay_inside_inferred_intervals() {
    let scale = Scale::small();
    for b in all_benchmarks() {
        let region = b.region();
        let params: Vec<AbsValue> = match region.input_range() {
            Some((lo, hi)) => {
                vec![AbsValue::float(FloatInterval { lo, hi, nan: false }); region.n_inputs()]
            }
            None => vec![AbsValue::top_float(); region.n_inputs()],
        };
        for input in b.training_inputs(&scale).iter().take(INPUTS_PER_REGION) {
            let args: Vec<Value> = input.iter().map(|&v| Value::F(v)).collect();
            let checked = run_checked(
                region.program(),
                region.entry(),
                &args,
                region.scratch_words(),
                BUDGET,
                &params,
            );
            let real = Interpreter::new(region.program())
                .with_memory(region.scratch_words())
                .with_budget(BUDGET)
                .run(region.entry(), &args);
            assert_eq!(
                checked,
                real,
                "{}: checked mirror diverged from the interpreter",
                b.name()
            );
            assert!(
                checked.is_ok(),
                "{}: region faulted on a training input",
                b.name()
            );
        }
    }
}

#[test]
fn declared_input_ranges_cover_the_training_data() {
    // The `with_input_range` declarations are contracts on the caller;
    // this pins that the actual training corpora respect them (the
    // premise of every proof the analysis emits).
    let scale = Scale::small();
    for b in all_benchmarks() {
        let region = b.region();
        let Some((lo, hi)) = region.input_range() else {
            continue;
        };
        for input in b.training_inputs(&scale) {
            for v in input {
                assert!(
                    v.is_finite() && lo <= v && v <= hi,
                    "{}: training input {v} escapes declared [{lo}, {hi}]",
                    b.name()
                );
            }
        }
    }
}

#[test]
fn precision_reports_bound_what_the_analysis_can_bound() {
    // Declared input ranges must at least bound every input row; full
    // datapath bounds additionally require the body to avoid unbounded
    // accumulation (jpeg's DCT loops legitimately widen to ±∞).
    for b in all_benchmarks() {
        let region = b.region();
        let Some(report) = region.precision() else {
            panic!("{}: entry function missing", b.name());
        };
        if region.input_range().is_some() {
            let is_input = |name: &str| {
                name.strip_prefix("in")
                    .is_some_and(|k| !k.is_empty() && k.bytes().all(|c| c.is_ascii_digit()))
            };
            for row in report.values.iter().filter(|v| is_input(&v.name)) {
                assert!(
                    row.bounded(),
                    "{}: declared ranges but unbounded input row {row:?}",
                    b.name()
                );
            }
        }
        let summary = region.precision_summary();
        assert_eq!(summary.bounded, report.bounded());
        assert_eq!(summary.datapath_int_bits, report.datapath_int_bits());
        assert_eq!(summary.datapath_frac_bits, report.datapath_frac_bits());
        assert_eq!(summary.values.len(), report.values.len());
    }
}

#[test]
fn sobel_datapath_is_fully_bounded() {
    // Sobel is loop-free with a declared [0, 1] window, so every value —
    // inputs, gradient intermediates, the clamped output — gets a finite
    // fixed-point requirement. Pinned: the datapath fits Q7.23.
    let region = benchmarks::benchmark_by_name("sobel")
        .expect("sobel exists")
        .region();
    let report = region.precision().unwrap();
    assert!(report.bounded(), "{report:?}");
    assert_eq!(report.datapath_int_bits(), Some(7));
    assert_eq!(report.datapath_frac_bits(), Some(23));
}

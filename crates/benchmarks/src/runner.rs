//! Generic application execution: functional runs, instruction counting,
//! and cycle-level timing.

use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CountingSink, Interpreter, IrError, NullSink, TraceSink, Value};
use parrot::NpuRuntime;
use uarch::{Core, CoreConfig, NpuAttachment, SimStats};

/// NPU-side results of a timed run: the architectural event counters
/// plus the per-invocation latency distribution (simulated cycles — both
/// deterministic for a given trace).
#[derive(Debug, Clone, PartialEq)]
pub struct NpuRunStats {
    /// Architectural event counters.
    pub stats: npu::NpuStats,
    /// Per-invocation latency distribution in simulated cycles.
    pub invocation_cycles: telemetry::Histogram,
}

/// The outcome of one application run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Final data memory (outputs live at benchmark-defined offsets).
    pub memory: Vec<f32>,
    /// Dynamic instructions executed.
    pub executed: u64,
    /// Entry function's return values.
    pub returns: Vec<Value>,
}

/// Runs an application, emitting its trace into `sink`. If the app
/// executes NPU queue instructions, a functional [`NpuRuntime`] built from
/// the variant's compiled region answers them.
///
/// # Errors
///
/// Propagates interpreter errors.
///
/// # Panics
///
/// Panics if `app.needs_npu` but the variant has no compiled region.
pub fn run_app<S: TraceSink + ?Sized>(
    app: &App,
    variant: &AppVariant<'_>,
    sink: &mut S,
) -> Result<RunOutput, IrError> {
    let mut interp = Interpreter::new(&app.program);
    *interp.memory_mut() = app.memory.clone();
    // The app's config loader configures the NPU via enq.c at program
    // start, so the functional runtime starts unconfigured.
    let mut runtime = if app.needs_npu {
        let compiled = variant
            .compiled()
            .expect("npu app without a compiled region");
        Some(NpuRuntime::new(compiled.npu_params().clone()))
    } else {
        None
    };
    let outcome = match &mut runtime {
        Some(rt) => interp.run_full(
            app.entry,
            &app.args,
            sink,
            Some(rt as &mut dyn approx_ir::NpuPort),
        )?,
        None => interp.run_full(app.entry, &app.args, sink, None)?,
    };
    Ok(RunOutput {
        executed: outcome.executed,
        returns: outcome.outputs,
        memory: std::mem::take(interp.memory_mut()),
    })
}

/// Functional-only run (no trace).
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_functional(app: &App, variant: &AppVariant<'_>) -> Result<RunOutput, IrError> {
    let mut sink = NullSink;
    run_app(app, variant, &mut sink)
}

/// Runs and counts dynamic instructions by class (Figure 7's data).
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_counting(
    app: &App,
    variant: &AppVariant<'_>,
) -> Result<(RunOutput, CountingSink), IrError> {
    let mut sink = CountingSink::default();
    let out = run_app(app, variant, &mut sink)?;
    Ok((out, sink))
}

/// Runs the application through the cycle-level core model, returning the
/// run output, final core statistics, and NPU statistics when a
/// cycle-accurate NPU was attached.
///
/// The core attachment is chosen from the variant:
/// * `Precise` / `SoftwareNn` → plain core;
/// * `Npu` → core + configured cycle-accurate NPU (timing side), while
///   the interpreter's functional port computes the actual values.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_timed(
    app: &App,
    variant: &AppVariant<'_>,
    cfg: CoreConfig,
) -> Result<(RunOutput, SimStats, Option<NpuRunStats>), IrError> {
    let mut core = match variant {
        AppVariant::Npu(compiled) => {
            let sim = compiled.make_npu().expect("compiled region fits its npu");
            Core::with_npu(cfg, sim)
        }
        _ => Core::new(cfg),
    };
    let out = run_app(app, variant, &mut core)?;
    // Drain the pipeline first: in-flight invocations complete during
    // finish(), so NPU statistics are only final afterwards.
    let stats = core.finish();
    let npu_stats = npu_run_stats(&core);
    Ok((out, stats, npu_stats))
}

fn npu_run_stats(core: &Core) -> Option<NpuRunStats> {
    Some(NpuRunStats {
        stats: core.npu_stats()?,
        invocation_cycles: core.npu_invocation_cycles()?,
    })
}

/// Like [`run_timed`] but with an explicitly constructed (already
/// configured) timing NPU — used by the PE-count sensitivity sweep where
/// the NPU sizing differs from the one the region was compiled for.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_timed_with_npu(
    app: &App,
    variant: &AppVariant<'_>,
    cfg: CoreConfig,
    sim: npu::NpuSim,
) -> Result<(RunOutput, SimStats, Option<NpuRunStats>), IrError> {
    let mut core = Core::with_npu(cfg, sim);
    let out = run_app(app, variant, &mut core)?;
    let stats = core.finish();
    let npu_stats = npu_run_stats(&core);
    Ok((out, stats, npu_stats))
}

/// Runs the transformed application against the hypothetical zero-cycle
/// NPU (Figure 8's "Core + Ideal NPU").
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_timed_ideal(
    app: &App,
    variant: &AppVariant<'_>,
    cfg: CoreConfig,
    n_inputs: usize,
    n_outputs: usize,
) -> Result<(RunOutput, SimStats), IrError> {
    let mut core = Core::with_attachment(cfg, NpuAttachment::ideal(n_inputs, n_outputs));
    let out = run_app(app, variant, &mut core)?;
    let stats = core.finish();
    Ok((out, stats))
}

/// Convenience: the precise (baseline) outputs of a benchmark at a scale.
///
/// # Panics
///
/// Panics if the baseline application faults (a bug, not an input
/// condition).
pub fn baseline_outputs(bench: &dyn Benchmark, scale: &Scale) -> Vec<f32> {
    let app = bench.build_app(&AppVariant::Precise, scale);
    let out = run_functional(&app, &AppVariant::Precise).expect("baseline app must run");
    bench.extract_outputs(&out.memory, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_ir::{FunctionBuilder, Program};

    fn trivial_app() -> App {
        let mut b = FunctionBuilder::new("main", 0);
        let v = b.constf(4.0);
        let base = b.consti(0);
        b.store(v, base, 0);
        b.ret(&[]);
        let mut p = Program::new();
        let entry = p.add_function(b.build().unwrap());
        App {
            program: p,
            entry,
            memory: vec![0.0; 4],
            args: vec![],
            needs_npu: false,
        }
    }

    #[test]
    fn functional_run_updates_memory() {
        let app = trivial_app();
        let out = run_functional(&app, &AppVariant::Precise).unwrap();
        assert_eq!(out.memory[0], 4.0);
        assert_eq!(out.executed, 4);
    }

    #[test]
    fn counting_run_reports_classes() {
        let app = trivial_app();
        let (_, counts) = run_counting(&app, &AppVariant::Precise).unwrap();
        assert_eq!(counts.total, 4);
        assert_eq!(counts.memory, 1);
    }

    #[test]
    fn timed_run_produces_cycles() {
        let app = trivial_app();
        let (_, stats, npu) =
            run_timed(&app, &AppVariant::Precise, CoreConfig::penryn_like()).unwrap();
        assert!(stats.cycles > 0);
        assert_eq!(stats.committed, 4);
        assert!(npu.is_none());
    }
}

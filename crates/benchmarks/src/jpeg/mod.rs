//! `jpeg` — baseline JPEG encoding (compression).
//!
//! The candidate region subsumes "the discrete cosine transform and
//! quantization phases, which contain function calls and loops": one 8×8
//! block of luma samples in, 64 quantized coefficients out (paper NN:
//! 64→16→64, error metric: image diff of the decoded output).
//!
//! The IR application performs RGB→luma conversion and pushes every block
//! through the region, producing the full quantized-coefficient stream;
//! [`codec`] turns such a stream into a real JFIF file (zigzag,
//! run-length, Annex K Huffman coding) and decodes it back to pixels for
//! the quality metric. Color is encoded as luma only (grayscale JPEG) —
//! a documented simplification; chroma would traverse the identical
//! region code path.

pub mod codec;
pub mod tables;

use crate::glue::install_region;
use crate::image::RgbImage;
use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CmpOp, FunctionBuilder, Program, Reg};
use parrot::RegionSpec;

/// Scratch words the region needs: input block, temp block, DCT basis,
/// quantization table.
const SCRATCH_WORDS: usize = 256;

/// Baseline JPEG operates on 8×8 macroblocks, so the benchmark works on
/// the largest multiple-of-8 image that fits the requested dimension
/// (the paper's 220×220 input becomes 216×216; a production encoder
/// would pad instead).
fn block_dim(requested: usize) -> usize {
    (requested / 8) * 8
}

/// The JPEG encoding benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jpeg;

/// Builds the `dct_quant` region: 64 samples → 64 quantized coefficients.
/// Scratch layout at `scratch_base`: `in[0..64]`, `tmp[64..128]`,
/// `basis[128..192]`, `quant[192..256]`.
#[allow(clippy::needless_range_loop)] // u/x index the basis table and IR offsets together
fn build_region_function(scratch_base: i32) -> approx_ir::Function {
    let basis = tables::dct_basis();
    let mut b = FunctionBuilder::new("dct_quant", 64);
    let s_in = b.consti(scratch_base);
    let s_tmp = b.consti(scratch_base + 64);
    let s_basis = b.consti(scratch_base + 128);
    let s_quant = b.consti(scratch_base + 192);

    // Prologue: spill the block and load the constant tables.
    for i in 0..64 {
        let p = b.param(i);
        b.store(p, s_in, i as i32);
    }
    for u in 0..8 {
        for x in 0..8 {
            let c = b.constf(basis[u][x]);
            b.store(c, s_basis, (u * 8 + x) as i32);
        }
    }
    for (i, &q) in tables::LUMA_QUANT.iter().enumerate() {
        let c = b.constf(q);
        b.store(c, s_quant, i as i32);
    }

    let one = b.consti(1);
    let eight = b.consti(8);
    let c128 = b.constf(128.0);
    let half = b.constf(0.5);

    // Row pass: tmp[y*8+u] = Σ_x (in[y*8+x] - 128) * basis[u*8+x]
    {
        let y = b.consti(0);
        let ytop = b.new_label();
        let ydone = b.new_label();
        b.bind(ytop);
        let yfin = b.cmpi(CmpOp::Ge, y, eight);
        b.branch_if(yfin, ydone);
        let yrow = b.imul(y, eight);
        {
            let u = b.consti(0);
            let utop = b.new_label();
            let udone = b.new_label();
            b.bind(utop);
            let ufin = b.cmpi(CmpOp::Ge, u, eight);
            b.branch_if(ufin, udone);
            let urow = b.imul(u, eight);
            let acc = b.constf(0.0);
            {
                let x = b.consti(0);
                let xtop = b.new_label();
                let xdone = b.new_label();
                b.bind(xtop);
                let xfin = b.cmpi(CmpOp::Ge, x, eight);
                b.branch_if(xfin, xdone);
                let in_off = b.iadd(yrow, x);
                let in_addr = b.iadd(s_in, in_off);
                let f = b.load(in_addr, 0);
                let lvl = b.fsub(f, c128);
                let t_off = b.iadd(urow, x);
                let t_addr = b.iadd(s_basis, t_off);
                let t = b.load(t_addr, 0);
                let prod = b.fmul(lvl, t);
                b.fadd_into(acc, prod);
                b.iadd_into(x, one);
                b.jump(xtop);
                b.bind(xdone);
            }
            let o_off = b.iadd(yrow, u);
            let o_addr = b.iadd(s_tmp, o_off);
            b.store(acc, o_addr, 0);
            b.iadd_into(u, one);
            b.jump(utop);
            b.bind(udone);
        }
        b.iadd_into(y, one);
        b.jump(ytop);
        b.bind(ydone);
    }

    // Column pass + quantization, writing back into `in`:
    // out[v*8+u] = floor((Σ_y tmp[y*8+u] * basis[v*8+y]) / Q[v*8+u] + 0.5)
    {
        let v = b.consti(0);
        let vtop = b.new_label();
        let vdone = b.new_label();
        b.bind(vtop);
        let vfin = b.cmpi(CmpOp::Ge, v, eight);
        b.branch_if(vfin, vdone);
        let vrow = b.imul(v, eight);
        {
            let u = b.consti(0);
            let utop = b.new_label();
            let udone = b.new_label();
            b.bind(utop);
            let ufin = b.cmpi(CmpOp::Ge, u, eight);
            b.branch_if(ufin, udone);
            let acc = b.constf(0.0);
            {
                let y = b.consti(0);
                let ytop = b.new_label();
                let ydone = b.new_label();
                b.bind(ytop);
                let yfin = b.cmpi(CmpOp::Ge, y, eight);
                b.branch_if(yfin, ydone);
                let yrow = b.imul(y, eight);
                let t_off = b.iadd(yrow, u);
                let t_addr = b.iadd(s_tmp, t_off);
                let tv = b.load(t_addr, 0);
                let b_off = b.iadd(vrow, y);
                let b_addr = b.iadd(s_basis, b_off);
                let bv = b.load(b_addr, 0);
                let prod = b.fmul(tv, bv);
                b.fadd_into(acc, prod);
                b.iadd_into(y, one);
                b.jump(ytop);
                b.bind(ydone);
            }
            let q_off = b.iadd(vrow, u);
            let q_addr = b.iadd(s_quant, q_off);
            let q = b.load(q_addr, 0);
            let scaled = b.fdiv(acc, q);
            let biased = b.fadd(scaled, half);
            let rounded = b.ffloor(biased);
            let o_addr = b.iadd(s_in, q_off);
            b.store(rounded, o_addr, 0);
            b.iadd_into(u, one);
            b.jump(utop);
            b.bind(udone);
        }
        b.iadd_into(v, one);
        b.jump(vtop);
        b.bind(vdone);
    }

    // Epilogue: return the 64 coefficients.
    let mut outs: Vec<Reg> = Vec::with_capacity(64);
    for i in 0..64 {
        outs.push(b.load(s_in, i));
    }
    b.ret(&outs);
    b.build().expect("jpeg region is structurally valid")
}

struct Layout {
    luma: usize,
    coeffs: usize,
    scratch: usize,
    end: usize,
}

fn layout(dim: usize) -> Layout {
    let px = dim * dim;
    let luma = 3 * px;
    let coeffs = luma + px;
    let scratch = coeffs + px;
    Layout {
        luma,
        coeffs,
        scratch,
        end: scratch + SCRATCH_WORDS,
    }
}

/// Extracts the 8×8 luma blocks of a grayscale `[0,255]` image in
/// block-major order (training-set construction).
fn blocks_of(gray255: &[f32], dim: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    for by in 0..dim / 8 {
        for bx in 0..dim / 8 {
            let mut block = Vec::with_capacity(64);
            for y in 0..8 {
                for x in 0..8 {
                    block.push(gray255[(by * 8 + y) * dim + bx * 8 + x]);
                }
            }
            out.push(block);
        }
    }
    out
}

impl Jpeg {
    /// Encodes a quantized coefficient stream to a complete JFIF file
    /// (the application's real deliverable).
    pub fn encode_file(coeffs: &[f32], dim: usize) -> Vec<u8> {
        codec::encode_jfif(coeffs, dim)
    }
}

impl Benchmark for Jpeg {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    fn domain(&self) -> &'static str {
        "compression"
    }

    fn error_metric(&self) -> &'static str {
        "image diff"
    }

    fn region(&self) -> RegionSpec {
        let mut program = Program::new();
        let entry = program.add_function(build_region_function(0));
        RegionSpec::new("dct_quant", program, entry, 64, 64)
            .expect("valid region")
            .with_scratch(SCRATCH_WORDS)
            // 8-bit grayscale pixels; bounds the static precision report.
            .with_input_range(0.0, 255.0)
    }

    fn training_inputs(&self, scale: &Scale) -> Vec<Vec<f32>> {
        // Paper: three 512×512 training images (lena/mandrill/peppers →
        // three synthetic images with distinct seeds here).
        let dim = if scale.image_dim >= 220 { 512 } else { 48 };
        let mut inputs = Vec::new();
        for seed in [0x7E61, 0x7E62, 0x7E63] {
            let gray: Vec<f32> = RgbImage::synthetic(dim, dim, seed)
                .to_gray()
                .iter()
                .map(|v| v * 255.0)
                .collect();
            inputs.extend(blocks_of(&gray, dim));
        }
        inputs
    }

    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App {
        let dim = block_dim(scale.image_dim);
        assert!(dim >= 8, "jpeg needs at least one 8x8 block");
        let lay = layout(dim);
        let px = dim * dim;
        let mut program = Program::new();
        let installed = install_region(
            &mut program,
            variant,
            build_region_function(lay.scratch as i32),
            lay.end,
        );

        let mut b = FunctionBuilder::new("main", 0);
        if let Some(loader) = installed.loader {
            b.call(loader, &[], 0);
        }
        let one = b.consti(1);
        // --- RGB→luma, scaled to [0, 255]. ---
        {
            let i = b.consti(0);
            let n = b.consti(px as i32);
            let three = b.consti(3);
            let y0 = b.consti(lay.luma as i32);
            let cr = b.constf(0.299 * 255.0);
            let cg = b.constf(0.587 * 255.0);
            let cb = b.constf(0.114 * 255.0);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, i, n);
            b.branch_if(fin, done);
            let base = b.imul(i, three);
            let r = b.load(base, 0);
            let g = b.load(base, 1);
            let bl = b.load(base, 2);
            let tr = b.fmul(r, cr);
            let tg = b.fmul(g, cg);
            let tb = b.fmul(bl, cb);
            let s1 = b.fadd(tr, tg);
            let y = b.fadd(s1, tb);
            let addr = b.iadd(y0, i);
            b.store(y, addr, 0);
            b.iadd_into(i, one);
            b.jump(top);
            b.bind(done);
        }
        // --- Per-block DCT + quantization through the region. ---
        {
            let blocks_per_row = dim / 8;
            let by = b.consti(0);
            let bmax = b.consti(blocks_per_row as i32);
            let y0 = b.consti(lay.luma as i32);
            let q0 = b.consti(lay.coeffs as i32);
            let row_stride = b.consti((8 * dim) as i32);
            let eight = b.consti(8);
            let c64 = b.consti(64);
            let bpr = b.consti(blocks_per_row as i32);
            let ytop = b.new_label();
            let ydone = b.new_label();
            b.bind(ytop);
            let yfin = b.cmpi(CmpOp::Ge, by, bmax);
            b.branch_if(yfin, ydone);
            {
                let bx = b.consti(0);
                let xtop = b.new_label();
                let xdone = b.new_label();
                b.bind(xtop);
                let xfin = b.cmpi(CmpOp::Ge, bx, bmax);
                b.branch_if(xfin, xdone);
                // base = luma + by*8*dim + bx*8
                let roff = b.imul(by, row_stride);
                let coff = b.imul(bx, eight);
                let t1 = b.iadd(y0, roff);
                let base = b.iadd(t1, coff);
                let mut block: Vec<Reg> = Vec::with_capacity(64);
                for y in 0..8i32 {
                    for x in 0..8i32 {
                        block.push(b.load(base, y * dim as i32 + x));
                    }
                }
                let out = b.call(installed.callee, &block, 64);
                // qbase = coeffs + (by*bpr + bx)*64
                let bidx0 = b.imul(by, bpr);
                let bidx = b.iadd(bidx0, bx);
                let qoff = b.imul(bidx, c64);
                let qbase = b.iadd(q0, qoff);
                for (i, &r) in out.iter().enumerate() {
                    b.store(r, qbase, i as i32);
                }
                b.iadd_into(bx, one);
                b.jump(xtop);
                b.bind(xdone);
            }
            b.iadd_into(by, one);
            b.jump(ytop);
            b.bind(ydone);
        }
        b.ret(&[]);
        let entry = program.add_function(b.build().expect("jpeg main is valid"));

        let img = RgbImage::synthetic(dim, dim, 0xE7A1);
        let mut memory = vec![0.0f32; lay.end];
        memory[..3 * px].copy_from_slice(img.data());
        memory.extend_from_slice(&installed.extra_memory);
        App {
            program,
            entry,
            memory,
            args: vec![],
            needs_npu: variant.needs_npu(),
        }
    }

    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32> {
        let dim = block_dim(scale.image_dim);
        let lay = layout(dim);
        memory[lay.coeffs..lay.coeffs + dim * dim].to_vec()
    }

    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64 {
        // The paper compares *decoded output images*, so quality reflects
        // what a viewer of the approximate JPEG actually sees.
        let dim = (reference.len() as f64).sqrt() as usize;
        let ref_img = codec::decode_coefficient_stream(reference, dim);
        let approx_img = codec::decode_coefficient_stream(approx, dim);
        parrot::quality::image_rmse(&ref_img, &approx_img, 255.0)
    }

    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64> {
        let dim = (reference.len() as f64).sqrt() as usize;
        let ref_img = codec::decode_coefficient_stream(reference, dim);
        let approx_img = codec::decode_coefficient_stream(approx, dim);
        parrot::quality::image_errors(&ref_img, &approx_img, 255.0)
    }

    fn paper_topology(&self) -> Vec<usize> {
        vec![64, 16, 64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::baseline_outputs;

    #[test]
    fn region_matches_reference_dct() {
        let region = Jpeg.region();
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 7) % 256) as f32;
        }
        let got = region.evaluate(&block).unwrap();
        let want = codec::dct_quantize(&block);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-3, "coeff {i}: {g} vs {w}");
        }
    }

    #[test]
    fn region_of_flat_block_is_dc_only() {
        let region = Jpeg.region();
        let got = region.evaluate(&[200.0f32; 64]).unwrap();
        assert_eq!(got[0], 36.0);
        assert!(got[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn region_has_loops_and_many_instructions() {
        let counts = Jpeg.region().static_counts();
        assert!(counts.loops >= 6, "loops = {}", counts.loops);
        assert!(counts.instructions > 300, "insts = {}", counts.instructions);
    }

    #[test]
    fn app_coefficients_match_reference_per_block() {
        let scale = Scale::small();
        let dim = scale.image_dim;
        let out = baseline_outputs(&Jpeg, &scale);
        // Recompute block 0 in Rust from the same evaluation image.
        let gray: Vec<f32> = RgbImage::synthetic(dim, dim, 0xE7A1)
            .to_gray()
            .iter()
            .map(|v| v * 255.0)
            .collect();
        let blocks = blocks_of(&gray, dim);
        let mut first = [0.0f32; 64];
        first.copy_from_slice(&blocks[0]);
        let want = codec::dct_quantize(&first);
        for i in 0..64 {
            assert!(
                (out[i] - want[i]).abs() < 1.01,
                "coeff {i}: {} vs {} (rounding may differ by 1 at half-steps)",
                out[i],
                want[i]
            );
        }
    }

    #[test]
    fn decoded_baseline_resembles_source() {
        let scale = Scale::small();
        let dim = scale.image_dim;
        let out = baseline_outputs(&Jpeg, &scale);
        let decoded = codec::decode_coefficient_stream(&out, dim);
        let gray: Vec<f32> = RgbImage::synthetic(dim, dim, 0xE7A1)
            .to_gray()
            .iter()
            .map(|v| v * 255.0)
            .collect();
        let rmse = parrot::quality::image_rmse(&gray, &decoded, 255.0);
        assert!(rmse < 0.08, "JPEG round-trip rmse = {rmse}");
    }

    #[test]
    fn encode_file_produces_valid_jfif() {
        let scale = Scale::small();
        let out = baseline_outputs(&Jpeg, &scale);
        let file = Jpeg::encode_file(&out, scale.image_dim);
        assert_eq!(&file[..2], &[0xFF, 0xD8]);
        assert_eq!(&file[file.len() - 2..], &[0xFF, 0xD9]);
        assert!(file.len() > 200);
    }

    #[test]
    fn training_blocks_have_64_samples_in_range() {
        let inputs = Jpeg.training_inputs(&Scale::small());
        assert!(!inputs.is_empty());
        for block in &inputs {
            assert_eq!(block.len(), 64);
            assert!(block.iter().all(|&v| (0.0..=255.0).contains(&v)));
        }
    }
}

//! Standard JPEG constants: quantization table, zigzag order, and the
//! baseline Huffman tables from ITU-T T.81 Annex K.

/// The Annex K luminance quantization table, row-major.
pub const LUMA_QUANT: [f32; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, //
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0, //
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, //
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0, //
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, //
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0, //
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, //
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// Zigzag scan order: `ZIGZAG[k]` is the row-major index of the `k`-th
/// coefficient in zigzag order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Annex K luminance DC Huffman table: `BITS` (codes per length 1..16).
pub const DC_BITS: [u8; 16] = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
/// Annex K luminance DC Huffman table: symbol values.
pub const DC_VALUES: [u8; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

/// Annex K luminance AC Huffman table: `BITS`.
pub const AC_BITS: [u8; 16] = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D];
/// Annex K luminance AC Huffman table: symbol values.
pub const AC_VALUES: [u8; 162] = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
];

/// Per-pass 1-D DCT basis: `DCT_BASIS[u][x] = 0.5 c(u) cos((2x+1)uπ/16)`
/// with `c(0) = 1/√2`, so two passes give the standard JPEG 2-D DCT
/// scaling `¼ c(u) c(v)`.
pub fn dct_basis() -> [[f32; 8]; 8] {
    let mut t = [[0.0f32; 8]; 8];
    for (u, row) in t.iter_mut().enumerate() {
        let cu = if u == 0 {
            std::f64::consts::FRAC_1_SQRT_2
        } else {
            1.0
        };
        for (x, v) in row.iter_mut().enumerate() {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *v = (0.5 * cu * angle.cos()) as f32;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z]);
            seen[z] = true;
        }
    }

    #[test]
    fn huffman_bits_sum_to_value_counts() {
        assert_eq!(DC_BITS.iter().map(|&b| b as usize).sum::<usize>(), 12);
        assert_eq!(AC_BITS.iter().map(|&b| b as usize).sum::<usize>(), 162);
    }

    #[test]
    fn dct_basis_is_orthonormal() {
        // The ½c(u) scaling makes the 8-point basis orthogonal with unit
        // rows, so forward-then-inverse transforms round-trip exactly.
        let t = dct_basis();
        for u in 0..8 {
            for v in 0..8 {
                let dot: f32 = (0..8).map(|x| t[u][x] * t[v][x]).sum();
                let expected = if u == v { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-6, "rows {u},{v}: {dot}");
            }
        }
    }
}

//! Reference JPEG machinery: forward/inverse DCT, quantization, and a
//! complete baseline grayscale JFIF encoder (zigzag, run-length, Annex K
//! Huffman coding, byte stuffing, headers).
//!
//! The forward path validates the IR region; the inverse path decodes
//! quantized coefficient streams back to pixels for the paper's
//! image-diff quality metric; the encoder makes the benchmark a real,
//! file-producing application.

use super::tables::{dct_basis, AC_BITS, AC_VALUES, DC_BITS, DC_VALUES, LUMA_QUANT, ZIGZAG};
use bytes::{BufMut, BytesMut};

/// Forward 2-D DCT + quantization of one 8×8 block of `[0, 255]` samples:
/// the reference semantics of the `jpeg` candidate region.
pub fn dct_quantize(block: &[f32; 64]) -> [f32; 64] {
    let t = dct_basis();
    // Level shift + row pass: tmp[y][u] = Σ_x (f[y][x] - 128) T[u][x]
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += (block[y * 8 + x] - 128.0) * t[u][x];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Column pass + quantization: F[v][u] = Σ_y tmp[y][u] T[v][y]
    let mut out = [0.0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * t[v][y];
            }
            out[v * 8 + u] = (acc / LUMA_QUANT[v * 8 + u] + 0.5).floor();
        }
    }
    out
}

/// Dequantization + inverse 2-D DCT back to `[0, 255]` samples.
pub fn dequantize_idct(coeffs: &[f32; 64]) -> [f32; 64] {
    let t = dct_basis();
    let mut freq = [0.0f32; 64];
    for k in 0..64 {
        freq[k] = coeffs[k] * LUMA_QUANT[k];
    }
    // Inverse column pass: tmp[y][u] = Σ_v F[v][u] T[v][y]
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += freq[v * 8 + u] * t[v][y];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Inverse row pass + level unshift.
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += tmp[y * 8 + u] * t[u][x];
            }
            out[y * 8 + x] = (acc + 128.0).clamp(0.0, 255.0);
        }
    }
    out
}

/// Decodes a stream of quantized coefficient blocks (block-major, as the
/// benchmark app stores them) into a `dim × dim` grayscale image.
///
/// # Panics
///
/// Panics if `coeffs.len() != dim * dim` or `dim % 8 != 0`.
pub fn decode_coefficient_stream(coeffs: &[f32], dim: usize) -> Vec<f32> {
    assert_eq!(coeffs.len(), dim * dim, "coefficient count mismatch");
    assert_eq!(dim % 8, 0, "image dimension must be a multiple of 8");
    let blocks_per_row = dim / 8;
    let mut image = vec![0.0f32; dim * dim];
    for (bi, chunk) in coeffs.chunks_exact(64).enumerate() {
        let mut block = [0.0f32; 64];
        block.copy_from_slice(chunk);
        let pixels = dequantize_idct(&block);
        let by = bi / blocks_per_row;
        let bx = bi % blocks_per_row;
        for y in 0..8 {
            for x in 0..8 {
                image[(by * 8 + y) * dim + bx * 8 + x] = pixels[y * 8 + x];
            }
        }
    }
    image
}

// ---------------------------------------------------------------------
// Huffman entropy coding
// ---------------------------------------------------------------------

/// A canonical Huffman code table built from `BITS`/`VALUES` (T.81 C.2).
#[derive(Debug, Clone)]
pub struct HuffTable {
    /// `(code, length)` per symbol value.
    codes: Vec<Option<(u16, u8)>>,
}

impl HuffTable {
    /// Builds the canonical code assignment.
    pub fn new(bits: &[u8; 16], values: &[u8]) -> Self {
        let mut codes = vec![None; 256];
        let mut code = 0u16;
        let mut k = 0usize;
        for (len_idx, &count) in bits.iter().enumerate() {
            for _ in 0..count {
                codes[values[k] as usize] = Some((code, len_idx as u8 + 1));
                code += 1;
                k += 1;
            }
            code <<= 1;
        }
        HuffTable { codes }
    }

    /// Code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has no code (invalid for baseline tables).
    pub fn code(&self, symbol: u8) -> (u16, u8) {
        self.codes[symbol as usize].expect("symbol must have a Huffman code")
    }
}

/// MSB-first bit writer with JPEG `0xFF 0x00` byte stuffing.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: BytesMut,
    acc: u32,
    n_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends `len` bits of `bits` (MSB first).
    pub fn put(&mut self, bits: u16, len: u8) {
        debug_assert!(len <= 16);
        self.acc = (self.acc << len) | (bits as u32 & ((1u32 << len) - 1));
        self.n_bits += len as u32;
        while self.n_bits >= 8 {
            let byte = (self.acc >> (self.n_bits - 8)) as u8;
            self.out.put_u8(byte);
            if byte == 0xFF {
                self.out.put_u8(0x00); // byte stuffing
            }
            self.n_bits -= 8;
        }
    }

    /// Pads the final partial byte with 1-bits and returns the stream.
    pub fn finish(mut self) -> BytesMut {
        if self.n_bits > 0 {
            let pad = 8 - self.n_bits;
            self.put((1u16 << pad) - 1, pad as u8);
        }
        self.out
    }
}

/// JPEG "magnitude category + extra bits" encoding of a signed value.
fn magnitude(v: i32) -> (u8, u16) {
    let abs = v.unsigned_abs();
    let size = 32 - abs.leading_zeros();
    let bits = if v < 0 {
        (v - 1) as u16 & ((1u16 << size) - 1)
    } else {
        v as u16
    };
    (size as u8, bits)
}

/// Entropy-encodes one quantized block (zigzag + RLE + Huffman) given the
/// previous block's DC value; returns the new DC predictor.
pub fn encode_block(
    writer: &mut BitWriter,
    dc_table: &HuffTable,
    ac_table: &HuffTable,
    coeffs: &[f32; 64],
    prev_dc: i32,
) -> i32 {
    let quantized: Vec<i32> = ZIGZAG.iter().map(|&z| coeffs[z] as i32).collect();
    // DC difference.
    let dc = quantized[0];
    let diff = dc - prev_dc;
    let (size, bits) = magnitude(diff);
    let (code, len) = dc_table.code(size);
    writer.put(code, len);
    if size > 0 {
        writer.put(bits, size);
    }
    // AC run-length coding.
    let mut run = 0u8;
    for &v in &quantized[1..] {
        if v == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            let (zrl, zlen) = ac_table.code(0xF0); // ZRL: 16 zeros
            writer.put(zrl, zlen);
            run -= 16;
        }
        let (size, bits) = magnitude(v);
        let (code, len) = ac_table.code((run << 4) | size);
        writer.put(code, len);
        writer.put(bits, size);
        run = 0;
    }
    if run > 0 {
        let (eob, elen) = ac_table.code(0x00); // end of block
        writer.put(eob, elen);
    }
    dc
}

/// Assembles a complete baseline grayscale JFIF file from a quantized
/// coefficient stream (block-major) for a `dim × dim` image.
///
/// # Panics
///
/// Panics on a size mismatch.
pub fn encode_jfif(coeffs: &[f32], dim: usize) -> Vec<u8> {
    assert_eq!(coeffs.len(), dim * dim);
    let mut out = BytesMut::new();
    // SOI + APP0 (JFIF).
    out.put_slice(&[0xFF, 0xD8]);
    out.put_slice(&[0xFF, 0xE0, 0x00, 0x10]);
    out.put_slice(b"JFIF\0");
    out.put_slice(&[0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00]);
    // DQT (table 0, 8-bit precision, zigzag order).
    out.put_slice(&[0xFF, 0xDB, 0x00, 0x43, 0x00]);
    for &z in &ZIGZAG {
        out.put_u8(LUMA_QUANT[z] as u8);
    }
    // SOF0: 8-bit, dim x dim, 1 component, no subsampling.
    out.put_slice(&[0xFF, 0xC0, 0x00, 0x0B, 0x08]);
    out.put_u16(dim as u16);
    out.put_u16(dim as u16);
    out.put_slice(&[0x01, 0x01, 0x11, 0x00]);
    // DHT: DC table 0 and AC table 0.
    let dc_len = 2 + 1 + 16 + DC_VALUES.len();
    out.put_slice(&[0xFF, 0xC4]);
    out.put_u16(dc_len as u16);
    out.put_u8(0x00);
    out.put_slice(&DC_BITS);
    out.put_slice(&DC_VALUES);
    let ac_len = 2 + 1 + 16 + AC_VALUES.len();
    out.put_slice(&[0xFF, 0xC4]);
    out.put_u16(ac_len as u16);
    out.put_u8(0x10);
    out.put_slice(&AC_BITS);
    out.put_slice(&AC_VALUES);
    // SOS.
    out.put_slice(&[0xFF, 0xDA, 0x00, 0x08, 0x01, 0x01, 0x00, 0x00, 0x3F, 0x00]);
    // Entropy-coded segment.
    let dc_table = HuffTable::new(&DC_BITS, &DC_VALUES);
    let ac_table = HuffTable::new(&AC_BITS, &AC_VALUES);
    let mut writer = BitWriter::new();
    let mut prev_dc = 0i32;
    for chunk in coeffs.chunks_exact(64) {
        let mut block = [0.0f32; 64];
        block.copy_from_slice(chunk);
        prev_dc = encode_block(&mut writer, &dc_table, &ac_table, &block, prev_dc);
    }
    out.extend_from_slice(&writer.finish());
    // EOI.
    out.put_slice(&[0xFF, 0xD9]);
    out.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_block() -> [f32; 64] {
        let mut b = [0.0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as f32 * 3.0) % 256.0;
        }
        b
    }

    #[test]
    fn dct_of_flat_block_is_dc_only() {
        let block = [200.0f32; 64];
        let coeffs = dct_quantize(&block);
        // DC = 8 * (200 - 128) / 16 = 36.
        assert_eq!(coeffs[0], 36.0);
        assert!(coeffs[1..].iter().all(|&c| c == 0.0), "{coeffs:?}");
    }

    #[test]
    fn dct_idct_round_trip_is_close() {
        let block = ramp_block();
        let coeffs = dct_quantize(&block);
        let back = dequantize_idct(&coeffs);
        // Quantization loses detail, but values must stay in the right
        // neighbourhood.
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 40.0, "{a} vs {b}");
        }
        let rmse: f32 = block
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt()
            / 8.0;
        assert!(rmse < 16.0, "rmse = {rmse}");
    }

    #[test]
    fn magnitude_categories() {
        assert_eq!(magnitude(0), (0, 0));
        assert_eq!(magnitude(1), (1, 1));
        assert_eq!(magnitude(-1), (1, 0));
        assert_eq!(magnitude(5), (3, 5));
        assert_eq!(magnitude(-5), (3, 2));
        assert_eq!(magnitude(255), (8, 255));
    }

    #[test]
    fn bit_writer_stuffs_ff() {
        let mut w = BitWriter::new();
        w.put(0xFF, 8);
        let out = w.finish();
        assert_eq!(out.as_ref(), &[0xFF, 0x00]);
    }

    #[test]
    fn bit_writer_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        let out = w.finish();
        assert_eq!(out.as_ref(), &[0b1011_1111]);
    }

    #[test]
    fn huffman_table_is_prefix_free() {
        let t = HuffTable::new(&AC_BITS, &AC_VALUES);
        let mut codes: Vec<(u16, u8)> = AC_VALUES.iter().map(|&v| t.code(v)).collect();
        codes.sort();
        for w in codes.windows(2) {
            let ((c1, l1), (c2, l2)) = (w[0], w[1]);
            assert_ne!((c1, l1), (c2, l2), "duplicate code");
            if l2 > l1 {
                // c1 must not be a prefix of c2.
                assert_ne!(c2 >> (l2 - l1), c1, "prefix violation");
            }
        }
    }

    #[test]
    fn jfif_stream_is_well_formed() {
        // Four flat blocks → a 16x16 image.
        let mut coeffs = Vec::new();
        for _ in 0..4 {
            coeffs.extend_from_slice(&dct_quantize(&[180.0f32; 64]));
        }
        let file = encode_jfif(&coeffs, 16);
        assert_eq!(&file[..2], &[0xFF, 0xD8], "SOI");
        assert_eq!(&file[file.len() - 2..], &[0xFF, 0xD9], "EOI");
        // Contains SOF0, DQT, DHT, SOS markers.
        for marker in [0xC0u8, 0xDB, 0xC4, 0xDA] {
            assert!(
                file.windows(2).any(|w| w == [0xFF, marker]),
                "missing marker {marker:02X}"
            );
        }
    }

    #[test]
    fn decode_stream_rebuilds_geometry() {
        let mut coeffs = vec![0.0f32; 256];
        // Block 0 bright, others dark.
        let bright = dct_quantize(&[250.0f32; 64]);
        let dark = dct_quantize(&[20.0f32; 64]);
        coeffs[..64].copy_from_slice(&bright);
        for b in 1..4 {
            coeffs[b * 64..(b + 1) * 64].copy_from_slice(&dark);
        }
        let img = decode_coefficient_stream(&coeffs, 16);
        assert!(img[0] > 200.0); // top-left block
        assert!(img[15] < 60.0); // top-right block
        assert!(img[16 * 8] < 60.0); // bottom-left block
    }
}

//! `jmeint` — triangle–triangle intersection detection (3D gaming).
//!
//! Möller's interval-overlap test: the target code "contains the bulk of
//! the algorithm, including many nested method calls and numerous
//! conditionals" — the most control-heavy region in the suite. The region
//! takes the 18 coordinates of two 3D triangles and produces a one-hot
//! pair whose larger element is the intersect/no-intersect decision
//! (paper NN: 18→32→8→2, error metric: miss rate).
//!
//! The coplanar case falls back to Möller's 2-D projection test
//! (edge–edge crossings plus mutual containment), in both the reference
//! and the IR implementation.

use crate::glue::install_region;
use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CmpOp, FuncId, FunctionBuilder, Program, Reg};
use parrot::{quality, RegionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The triangle-intersection benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jmeint;

// ---------------------------------------------------------------------
// Reference implementation (Möller 1997, interval overlap method)
// ---------------------------------------------------------------------

fn sub3(a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross3(a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot3(a: [f32; 3], b: [f32; 3]) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Interval of one triangle along the intersection line.
///
/// `p` are the projected vertex coordinates, `d` the signed distances to
/// the other triangle's plane. `None` signals the coplanar case.
fn compute_intervals(p: [f32; 3], d: [f32; 3]) -> Option<(f32, f32)> {
    let d0d1 = d[0] * d[1];
    let d0d2 = d[0] * d[2];
    let (a, b, c, da, db, dc) = if d0d1 > 0.0 {
        // d0 and d1 on the same side; d2 alone: pivot on vertex 2.
        (p[2], p[0], p[1], d[2], d[0], d[1])
    } else if d0d2 > 0.0 {
        (p[1], p[0], p[2], d[1], d[0], d[2])
    } else if d[1] * d[2] > 0.0 || d[0] != 0.0 {
        (p[0], p[1], p[2], d[0], d[1], d[2])
    } else if d[1] != 0.0 {
        (p[1], p[0], p[2], d[1], d[0], d[2])
    } else if d[2] != 0.0 {
        (p[2], p[0], p[1], d[2], d[0], d[1])
    } else {
        return None; // coplanar
    };
    let t1 = a + (b - a) * da / (da - db);
    let t2 = a + (c - a) * da / (da - dc);
    Some((t1, t2))
}

/// 2-D segment crossing test between edge `v0→v1` and edge `u0→u1`
/// (division-free sign/interval arithmetic).
fn edge_edge_2d(v0: [f32; 2], v1: [f32; 2], u0: [f32; 2], u1: [f32; 2]) -> bool {
    let ax = v1[0] - v0[0];
    let ay = v1[1] - v0[1];
    let bx = u0[0] - u1[0];
    let by = u0[1] - u1[1];
    let cx = v0[0] - u0[0];
    let cy = v0[1] - u0[1];
    let f = ay * bx - ax * by;
    let d = by * cx - bx * cy;
    if (f > 0.0 && d >= 0.0 && d <= f) || (f < 0.0 && d <= 0.0 && d >= f) {
        let e = ax * cy - ay * cx;
        if f > 0.0 {
            e >= 0.0 && e <= f
        } else {
            e <= 0.0 && e >= f
        }
    } else {
        false
    }
}

/// 2-D point-in-triangle test via consistent edge-side signs.
fn point_in_tri_2d(p: [f32; 2], t0: [f32; 2], t1: [f32; 2], t2: [f32; 2]) -> bool {
    let mut d = [0.0f32; 3];
    for (k, (a, b)) in [(t0, t1), (t1, t2), (t2, t0)].into_iter().enumerate() {
        let aa = b[1] - a[1];
        let bb = -(b[0] - a[0]);
        let cc = -aa * a[0] - bb * a[1];
        d[k] = aa * p[0] + bb * p[1] + cc;
    }
    d[0] * d[1] > 0.0 && d[0] * d[2] > 0.0
}

/// Coplanar fallback: project both triangles onto the plane normal's two
/// minor axes, then test every edge pair for crossings and finally mutual
/// containment.
fn coplanar_tri_tri(n: [f32; 3], v: &[[f32; 3]; 3], u: &[[f32; 3]; 3]) -> bool {
    let a = [n[0].abs(), n[1].abs(), n[2].abs()];
    let (i0, i1) = if a[0] >= a[1] && a[0] >= a[2] {
        (1, 2)
    } else if a[1] >= a[2] {
        (0, 2)
    } else {
        (0, 1)
    };
    let proj = |p: [f32; 3]| [p[i0], p[i1]];
    let vp = [proj(v[0]), proj(v[1]), proj(v[2])];
    let up = [proj(u[0]), proj(u[1]), proj(u[2])];
    for i in 0..3 {
        for j in 0..3 {
            if edge_edge_2d(vp[i], vp[(i + 1) % 3], up[j], up[(j + 1) % 3]) {
                return true;
            }
        }
    }
    point_in_tri_2d(vp[0], up[0], up[1], up[2]) || point_in_tri_2d(up[0], vp[0], vp[1], vp[2])
}

/// Reference triangle–triangle intersection test.
pub fn tri_tri_intersects(v: &[[f32; 3]; 3], u: &[[f32; 3]; 3]) -> bool {
    // Plane of triangle V: n1 · x + d1 = 0.
    let e1 = sub3(v[1], v[0]);
    let e2 = sub3(v[2], v[0]);
    let n1 = cross3(e1, e2);
    let d1 = -dot3(n1, v[0]);
    let du = [
        dot3(n1, u[0]) + d1,
        dot3(n1, u[1]) + d1,
        dot3(n1, u[2]) + d1,
    ];
    if du[0] * du[1] > 0.0 && du[0] * du[2] > 0.0 {
        return false; // U entirely on one side of V's plane
    }
    // Plane of triangle U.
    let e1 = sub3(u[1], u[0]);
    let e2 = sub3(u[2], u[0]);
    let n2 = cross3(e1, e2);
    let d2 = -dot3(n2, u[0]);
    let dv = [
        dot3(n2, v[0]) + d2,
        dot3(n2, v[1]) + d2,
        dot3(n2, v[2]) + d2,
    ];
    if dv[0] * dv[1] > 0.0 && dv[0] * dv[2] > 0.0 {
        return false;
    }
    // Direction of the intersection line; project on its largest axis.
    let dir = cross3(n1, n2);
    let mut index = 0;
    let mut max = dir[0].abs();
    if dir[1].abs() > max {
        max = dir[1].abs();
        index = 1;
    }
    if dir[2].abs() > max {
        index = 2;
    }
    let vp = [v[0][index], v[1][index], v[2][index]];
    let up = [u[0][index], u[1][index], u[2][index]];
    let Some((a1, a2)) = compute_intervals(vp, dv) else {
        // All distances zero: the triangles are coplanar — fall back to
        // the 2-D projection test.
        return coplanar_tri_tri(n1, v, u);
    };
    let Some((b1, b2)) = compute_intervals(up, du) else {
        return coplanar_tri_tri(n1, v, u);
    };
    let (i1lo, i1hi) = (a1.min(a2), a1.max(a2));
    let (i2lo, i2hi) = (b1.min(b2), b1.max(b2));
    !(i1hi < i2lo || i2hi < i1lo)
}

// ---------------------------------------------------------------------
// IR implementation
// ---------------------------------------------------------------------

/// IR `compute_intervals(p0,p1,p2,d0,d1,d2) -> (t1, t2, ok)`.
fn build_intervals_function() -> approx_ir::Function {
    let mut b = FunctionBuilder::new("compute_intervals", 6);
    let p: Vec<Reg> = (0..3).map(|i| b.param(i)).collect();
    let d: Vec<Reg> = (3..6).map(|i| b.param(i)).collect();
    let zero = b.constf(0.0);

    // Result pivot registers, assigned by whichever arm runs.
    let (ra, rb, rc) = (b.reg(), b.reg(), b.reg());
    let (rda, rdb, rdc) = (b.reg(), b.reg(), b.reg());
    let join = b.new_label();
    let coplanar = b.new_label();

    let assign = |b: &mut FunctionBuilder,
                  regs: (Reg, Reg, Reg, Reg, Reg, Reg),
                  (ia, ib, ic): (usize, usize, usize),
                  p: &[Reg],
                  d: &[Reg]| {
        b.mov(regs.0, p[ia]);
        b.mov(regs.1, p[ib]);
        b.mov(regs.2, p[ic]);
        b.mov(regs.3, d[ia]);
        b.mov(regs.4, d[ib]);
        b.mov(regs.5, d[ic]);
    };
    let regs = (ra, rb, rc, rda, rdb, rdc);

    // if d0*d1 > 0: pivot 2
    let d0d1 = b.fmul(d[0], d[1]);
    let c1 = b.cmpf(CmpOp::Gt, d0d1, zero);
    let else1 = b.new_label();
    b.branch_if_zero(c1, else1);
    assign(&mut b, regs, (2, 0, 1), &p, &d);
    b.jump(join);
    b.bind(else1);

    // else if d0*d2 > 0: pivot 1
    let d0d2 = b.fmul(d[0], d[2]);
    let c2 = b.cmpf(CmpOp::Gt, d0d2, zero);
    let else2 = b.new_label();
    b.branch_if_zero(c2, else2);
    assign(&mut b, regs, (1, 0, 2), &p, &d);
    b.jump(join);
    b.bind(else2);

    // else if d1*d2 > 0 or d0 != 0: pivot 0
    let d1d2 = b.fmul(d[1], d[2]);
    let c3a = b.cmpf(CmpOp::Gt, d1d2, zero);
    let c3b = b.cmpf(CmpOp::Ne, d[0], zero);
    let c3 = b.ior(c3a, c3b);
    let else3 = b.new_label();
    b.branch_if_zero(c3, else3);
    assign(&mut b, regs, (0, 1, 2), &p, &d);
    b.jump(join);
    b.bind(else3);

    // else if d1 != 0: pivot 1
    let c4 = b.cmpf(CmpOp::Ne, d[1], zero);
    let else4 = b.new_label();
    b.branch_if_zero(c4, else4);
    assign(&mut b, regs, (1, 0, 2), &p, &d);
    b.jump(join);
    b.bind(else4);

    // else if d2 != 0: pivot 2
    let c5 = b.cmpf(CmpOp::Ne, d[2], zero);
    b.branch_if_zero(c5, coplanar);
    assign(&mut b, regs, (2, 0, 1), &p, &d);
    b.jump(join);

    b.bind(join);
    // t1 = a + (b - a) * da / (da - db); t2 = a + (c - a) * da / (da - dc)
    let bma = b.fsub(rb, ra);
    let dadb = b.fsub(rda, rdb);
    let q1 = b.fdiv(rda, dadb);
    let s1 = b.fmul(bma, q1);
    let t1 = b.fadd(ra, s1);
    let cma = b.fsub(rc, ra);
    let dadc = b.fsub(rda, rdc);
    let q2 = b.fdiv(rda, dadc);
    let s2 = b.fmul(cma, q2);
    let t2 = b.fadd(ra, s2);
    let ok = b.constf(1.0);
    b.ret(&[t1, t2, ok]);

    b.bind(coplanar);
    let nok = b.constf(0.0);
    b.ret(&[nok, nok, nok]);
    b.build().expect("compute_intervals is structurally valid")
}

/// IR 2-D coplanar test: 12 params (projected `v` then `u` vertices as
/// x,y pairs) → 1.0 if the coplanar triangles overlap, else 0.0.
fn build_coplanar_function() -> approx_ir::Function {
    let mut b = FunctionBuilder::new("coplanar_tri_tri", 12);
    let vp: Vec<[Reg; 2]> = (0..3)
        .map(|k| [b.param(2 * k), b.param(2 * k + 1)])
        .collect();
    let up: Vec<[Reg; 2]> = (0..3)
        .map(|k| [b.param(6 + 2 * k), b.param(6 + 2 * k + 1)])
        .collect();
    let zero = b.constf(0.0);
    let hit = b.new_label();

    // Edge–edge crossings: every V edge against every U edge.
    for i in 0..3 {
        for j in 0..3 {
            let (v0, v1) = (vp[i], vp[(i + 1) % 3]);
            let (u0, u1) = (up[j], up[(j + 1) % 3]);
            let ax = b.fsub(v1[0], v0[0]);
            let ay = b.fsub(v1[1], v0[1]);
            let bx = b.fsub(u0[0], u1[0]);
            let by = b.fsub(u0[1], u1[1]);
            let cx = b.fsub(v0[0], u0[0]);
            let cy = b.fsub(v0[1], u0[1]);
            let f1 = b.fmul(ay, bx);
            let f2 = b.fmul(ax, by);
            let f = b.fsub(f1, f2);
            let d1 = b.fmul(by, cx);
            let d2 = b.fmul(bx, cy);
            let d = b.fsub(d1, d2);
            // cond1: d within [0, f] with f's sign.
            let fpos = b.cmpf(CmpOp::Gt, f, zero);
            let dge = b.cmpf(CmpOp::Ge, d, zero);
            let dle = b.cmpf(CmpOp::Le, d, f);
            let t1 = b.iand(fpos, dge);
            let pos_case = b.iand(t1, dle);
            let fneg = b.cmpf(CmpOp::Lt, f, zero);
            let dle0 = b.cmpf(CmpOp::Le, d, zero);
            let dgef = b.cmpf(CmpOp::Ge, d, f);
            let t2 = b.iand(fneg, dle0);
            let neg_case = b.iand(t2, dgef);
            let cond1 = b.ior(pos_case, neg_case);
            // cond2: e within [0, f] with f's sign.
            let e1 = b.fmul(ax, cy);
            let e2 = b.fmul(ay, cx);
            let e = b.fsub(e1, e2);
            let ege = b.cmpf(CmpOp::Ge, e, zero);
            let ele = b.cmpf(CmpOp::Le, e, f);
            let t3 = b.iand(fpos, ege);
            let pos2 = b.iand(t3, ele);
            let ele0 = b.cmpf(CmpOp::Le, e, zero);
            let egef = b.cmpf(CmpOp::Ge, e, f);
            let t4 = b.iand(fneg, ele0);
            let neg2 = b.iand(t4, egef);
            let cond2 = b.ior(pos2, neg2);
            let crossing = b.iand(cond1, cond2);
            b.branch_if(crossing, hit);
        }
    }

    // Containment: V0 inside U, or U0 inside V.
    for (p, tri) in [(vp[0], &up), (up[0], &vp)] {
        let mut d = Vec::with_capacity(3);
        for k in 0..3 {
            let (a, c) = (tri[k], tri[(k + 1) % 3]);
            let aa = b.fsub(c[1], a[1]);
            let bb0 = b.fsub(c[0], a[0]);
            let bb = b.fneg(bb0);
            let t1 = b.fmul(aa, a[0]);
            let t2 = b.fmul(bb, a[1]);
            let sum = b.fadd(t1, t2);
            let cc = b.fneg(sum);
            let s1 = b.fmul(aa, p[0]);
            let s2 = b.fmul(bb, p[1]);
            let s3 = b.fadd(s1, s2);
            d.push(b.fadd(s3, cc));
        }
        let p01 = b.fmul(d[0], d[1]);
        let p02 = b.fmul(d[0], d[2]);
        let g1 = b.cmpf(CmpOp::Gt, p01, zero);
        let g2 = b.cmpf(CmpOp::Gt, p02, zero);
        let inside = b.iand(g1, g2);
        b.branch_if(inside, hit);
    }

    b.ret(&[zero]);
    b.bind(hit);
    let one = b.constf(1.0);
    b.ret(&[one]);
    b.build().expect("coplanar test is structurally valid")
}

/// IR Möller test: 18 params → one-hot `(intersects, disjoint)`.
fn build_region_program() -> (Program, FuncId) {
    let mut program = Program::new();
    let intervals = program.add_function(build_intervals_function());
    let coplanar_fn = program.add_function(build_coplanar_function());

    let mut b = FunctionBuilder::new("jmeint", 18);
    let v: Vec<Reg> = (0..9).map(|i| b.param(i)).collect();
    let u: Vec<Reg> = (9..18).map(|i| b.param(i)).collect();
    let zero = b.constf(0.0);
    let one = b.constf(1.0);
    let no_hit = b.new_label();

    // Helper closures over the builder for 3-vector math on registers.
    let sub = |b: &mut FunctionBuilder, a: &[Reg], c: &[Reg]| -> [Reg; 3] {
        [b.fsub(a[0], c[0]), b.fsub(a[1], c[1]), b.fsub(a[2], c[2])]
    };
    let cross = |b: &mut FunctionBuilder, a: &[Reg; 3], c: &[Reg; 3]| -> [Reg; 3] {
        let x1 = b.fmul(a[1], c[2]);
        let x2 = b.fmul(a[2], c[1]);
        let x = b.fsub(x1, x2);
        let y1 = b.fmul(a[2], c[0]);
        let y2 = b.fmul(a[0], c[2]);
        let y = b.fsub(y1, y2);
        let z1 = b.fmul(a[0], c[1]);
        let z2 = b.fmul(a[1], c[0]);
        let z = b.fsub(z1, z2);
        [x, y, z]
    };
    let dot = |b: &mut FunctionBuilder, a: &[Reg; 3], c: &[Reg]| -> Reg {
        let x = b.fmul(a[0], c[0]);
        let y = b.fmul(a[1], c[1]);
        let z = b.fmul(a[2], c[2]);
        let s = b.fadd(x, y);
        b.fadd(s, z)
    };

    // Plane of V.
    let e1 = sub(&mut b, &v[3..6], &v[0..3]);
    let e2 = sub(&mut b, &v[6..9], &v[0..3]);
    let n1 = cross(&mut b, &e1, &e2);
    let n1v0 = dot(&mut b, &n1, &v[0..3]);
    let d1 = b.fneg(n1v0);
    let mut du = Vec::with_capacity(3);
    for k in 0..3 {
        let nd = dot(&mut b, &n1, &u[3 * k..3 * k + 3]);
        du.push(b.fadd(nd, d1));
    }
    // Early reject: all of U on one side.
    let du01 = b.fmul(du[0], du[1]);
    let du02 = b.fmul(du[0], du[2]);
    let r1 = b.cmpf(CmpOp::Gt, du01, zero);
    let r2 = b.cmpf(CmpOp::Gt, du02, zero);
    let both = b.iand(r1, r2);
    b.branch_if(both, no_hit);

    // Plane of U.
    let f1 = sub(&mut b, &u[3..6], &u[0..3]);
    let f2 = sub(&mut b, &u[6..9], &u[0..3]);
    let n2 = cross(&mut b, &f1, &f2);
    let n2u0 = dot(&mut b, &n2, &u[0..3]);
    let d2 = b.fneg(n2u0);
    let mut dv = Vec::with_capacity(3);
    for k in 0..3 {
        let nd = dot(&mut b, &n2, &v[3 * k..3 * k + 3]);
        dv.push(b.fadd(nd, d2));
    }
    let dv01 = b.fmul(dv[0], dv[1]);
    let dv02 = b.fmul(dv[0], dv[2]);
    let r3 = b.cmpf(CmpOp::Gt, dv01, zero);
    let r4 = b.cmpf(CmpOp::Gt, dv02, zero);
    let both2 = b.iand(r3, r4);
    b.branch_if(both2, no_hit);

    // Intersection-line direction; select the dominant axis by moving the
    // corresponding vertex components into projection registers.
    let dir = cross(&mut b, &n1, &n2);
    let ax = b.fabs(dir[0]);
    let ay = b.fabs(dir[1]);
    let az = b.fabs(dir[2]);
    let vp = [b.reg(), b.reg(), b.reg()];
    let up = [b.reg(), b.reg(), b.reg()];
    let pick = |b: &mut FunctionBuilder,
                axis: usize,
                vp: &[Reg; 3],
                up: &[Reg; 3],
                v: &[Reg],
                u: &[Reg]| {
        for k in 0..3 {
            b.mov(vp[k], v[3 * k + axis]);
            b.mov(up[k], u[3 * k + axis]);
        }
    };
    let proj_done = b.new_label();
    let try_y = b.new_label();
    let use_z = b.new_label();
    // if ax >= ay && ax >= az -> x
    let xge_y = b.cmpf(CmpOp::Ge, ax, ay);
    let xge_z = b.cmpf(CmpOp::Ge, ax, az);
    let use_x = b.iand(xge_y, xge_z);
    b.branch_if_zero(use_x, try_y);
    pick(&mut b, 0, &vp, &up, &v, &u);
    b.jump(proj_done);
    b.bind(try_y);
    let yge_z = b.cmpf(CmpOp::Ge, ay, az);
    b.branch_if_zero(yge_z, use_z);
    pick(&mut b, 1, &vp, &up, &v, &u);
    b.jump(proj_done);
    b.bind(use_z);
    pick(&mut b, 2, &vp, &up, &v, &u);
    b.bind(proj_done);

    // Intervals of both triangles along the line; an all-zero distance
    // vector signals coplanarity and diverts to the 2-D fallback.
    let coplanar_path = b.new_label();
    let iv = b.call(intervals, &[vp[0], vp[1], vp[2], dv[0], dv[1], dv[2]], 3);
    let okv = b.cmpf(CmpOp::Ne, iv[2], zero);
    b.branch_if_zero(okv, coplanar_path);
    let iu = b.call(intervals, &[up[0], up[1], up[2], du[0], du[1], du[2]], 3);
    let oku = b.cmpf(CmpOp::Ne, iu[2], zero);
    b.branch_if_zero(oku, coplanar_path);

    // Sort and overlap-test the intervals.
    let lo1 = b.fmin(iv[0], iv[1]);
    let hi1 = b.fmax(iv[0], iv[1]);
    let lo2 = b.fmin(iu[0], iu[1]);
    let hi2 = b.fmax(iu[0], iu[1]);
    let sep1 = b.cmpf(CmpOp::Lt, hi1, lo2);
    let sep2 = b.cmpf(CmpOp::Lt, hi2, lo1);
    let sep = b.ior(sep1, sep2);
    b.branch_if(sep, no_hit);
    b.ret(&[one, zero]);

    // Coplanar fallback: project onto n1's two minor axes and run the
    // 2-D overlap test.
    b.bind(coplanar_path);
    {
        let nx = b.fabs(n1[0]);
        let ny = b.fabs(n1[1]);
        let nz = b.fabs(n1[2]);
        let flat = [
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
            b.reg(),
        ];
        let fill = |b: &mut FunctionBuilder,
                    flat: &[Reg; 12],
                    i0: usize,
                    i1: usize,
                    v: &[Reg],
                    u: &[Reg]| {
            for k in 0..3 {
                b.mov(flat[2 * k], v[3 * k + i0]);
                b.mov(flat[2 * k + 1], v[3 * k + i1]);
                b.mov(flat[6 + 2 * k], u[3 * k + i0]);
                b.mov(flat[6 + 2 * k + 1], u[3 * k + i1]);
            }
        };
        let try_y = b.new_label();
        let use_xy = b.new_label();
        let filled = b.new_label();
        let xge_y = b.cmpf(CmpOp::Ge, nx, ny);
        let xge_z = b.cmpf(CmpOp::Ge, nx, nz);
        let x_dom = b.iand(xge_y, xge_z);
        b.branch_if_zero(x_dom, try_y);
        fill(&mut b, &flat, 1, 2, &v, &u);
        b.jump(filled);
        b.bind(try_y);
        let yge_z = b.cmpf(CmpOp::Ge, ny, nz);
        b.branch_if_zero(yge_z, use_xy);
        fill(&mut b, &flat, 0, 2, &v, &u);
        b.jump(filled);
        b.bind(use_xy);
        fill(&mut b, &flat, 0, 1, &v, &u);
        b.bind(filled);
        let overlap = b.call(coplanar_fn, &flat, 1);
        let is_hit = b.cmpf(CmpOp::Gt, overlap[0], zero);
        b.branch_if_zero(is_hit, no_hit);
        b.ret(&[one, zero]);
    }

    b.bind(no_hit);
    b.ret(&[zero, one]);
    let entry = program.add_function(b.build().expect("jmeint region is valid"));
    (program, entry)
}

// ---------------------------------------------------------------------
// Inputs & benchmark wiring
// ---------------------------------------------------------------------

/// `n` random triangle pairs, 18 floats each.
///
/// The first triangle is uniform in the unit cube; the second is placed
/// in its vicinity (centroid offset within a small ball). `jmeint` is a
/// *narrow-phase* collision kernel — in its host engine it only ever runs
/// on pairs that already passed broad-phase bounding-volume culling, so
/// candidate pairs are nearby by construction. This also keeps the two
/// classes balanced, as in the paper's reported miss rates.
fn random_pairs(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut pair = vec![0.0f32; 18];
            // Triangle V: anchored at a random point, edges within a ball.
            let anchor: [f32; 3] = [rng.gen(), rng.gen(), rng.gen()];
            for k in 0..3 {
                for c in 0..3 {
                    pair[3 * k + c] = anchor[c] + rng.gen_range(-0.3f32..0.3);
                }
            }
            // Triangle U: near V's anchor (post-broad-phase candidate).
            let offset: [f32; 3] = [
                rng.gen_range(-0.25..0.25),
                rng.gen_range(-0.25..0.25),
                rng.gen_range(-0.25..0.25),
            ];
            for k in 0..3 {
                for c in 0..3 {
                    pair[9 + 3 * k + c] = anchor[c] + offset[c] + rng.gen_range(-0.3f32..0.3);
                }
            }
            pair
        })
        .collect()
}

impl Benchmark for Jmeint {
    fn name(&self) -> &'static str {
        "jmeint"
    }

    fn domain(&self) -> &'static str {
        "3d gaming"
    }

    fn error_metric(&self) -> &'static str {
        "miss rate"
    }

    fn region(&self) -> RegionSpec {
        let (program, entry) = build_region_program();
        RegionSpec::new("jmeint", program, entry, 18, 2).expect("valid region")
    }

    fn training_inputs(&self, scale: &Scale) -> Vec<Vec<f32>> {
        // Paper: a large set of random triangle-pair coordinates, disjoint
        // from the evaluation pairs.
        let n = if scale.tri_pairs >= 10_000 {
            20_000
        } else {
            2_000
        };
        random_pairs(n, 0x7121)
    }

    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App {
        let n = scale.tri_pairs;
        let out_base = 18 * n;
        let end = 19 * n;
        let mut program = Program::new();
        let installed = match variant {
            AppVariant::Precise => {
                // The precise region calls compute_intervals (function id
                // 0) and the coplanar test (id 1) in its own program, so
                // install those at the same ids here, then transplant the
                // region function.
                let intervals = program.add_function(build_intervals_function());
                assert_eq!(intervals.0, 0, "intervals must keep function id 0");
                let coplanar = program.add_function(build_coplanar_function());
                assert_eq!(coplanar.0, 1, "coplanar test must keep function id 1");
                let (rp, entry) = build_region_program();
                crate::glue::InstalledRegion {
                    callee: program.add_function(rp.function(entry).clone()),
                    loader: None,
                    extra_memory: Vec::new(),
                }
            }
            _ => install_region(
                &mut program,
                variant,
                // Variant != Precise never calls this function; pass the
                // intervals function as a placeholder of matching shape.
                build_intervals_function(),
                end,
            ),
        };

        let mut b = FunctionBuilder::new("main", 0);
        if let Some(loader) = installed.loader {
            b.call(loader, &[], 0);
        }
        let one = b.consti(1);
        let stride = b.consti(18);
        let i = b.consti(0);
        let count = b.consti(n as i32);
        let o0 = b.consti(out_base as i32);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        let fin = b.cmpi(CmpOp::Ge, i, count);
        b.branch_if(fin, done);
        let base = b.imul(i, stride);
        let coords: Vec<Reg> = (0..18).map(|k| b.load(base, k)).collect();
        let out = b.call(installed.callee, &coords, 2);
        let hit = b.cmpf(CmpOp::Gt, out[0], out[1]);
        let decision = b.itof(hit);
        let oaddr = b.iadd(o0, i);
        b.store(decision, oaddr, 0);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(done);
        b.ret(&[]);
        let entry = program.add_function(b.build().expect("jmeint main is valid"));

        let mut memory = vec![0.0f32; end];
        for (k, pair) in random_pairs(n, 0xE7A1).iter().enumerate() {
            memory[18 * k..18 * (k + 1)].copy_from_slice(pair);
        }
        memory.extend_from_slice(&installed.extra_memory);
        App {
            program,
            entry,
            memory,
            args: vec![],
            needs_npu: variant.needs_npu(),
        }
    }

    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32> {
        let n = scale.tri_pairs;
        memory[18 * n..19 * n].to_vec()
    }

    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64 {
        let r: Vec<bool> = reference.iter().map(|&v| v > 0.5).collect();
        let a: Vec<bool> = approx.iter().map(|&v| v > 0.5).collect();
        quality::miss_rate(&r, &a)
    }

    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64> {
        reference
            .iter()
            .zip(approx)
            .map(|(&r, &a)| if (r > 0.5) == (a > 0.5) { 0.0 } else { 1.0 })
            .collect()
    }

    fn paper_topology(&self) -> Vec<usize> {
        vec![18, 32, 8, 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::baseline_outputs;

    fn to_tris(flat: &[f32]) -> ([[f32; 3]; 3], [[f32; 3]; 3]) {
        let mut v = [[0.0; 3]; 3];
        let mut u = [[0.0; 3]; 3];
        for k in 0..3 {
            for c in 0..3 {
                v[k][c] = flat[3 * k + c];
                u[k][c] = flat[9 + 3 * k + c];
            }
        }
        (v, u)
    }

    #[test]
    fn reference_detects_obvious_cases() {
        // Two triangles crossing at the origin region.
        let v = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let u = [[0.2, 0.2, -0.5], [0.2, 0.2, 0.5], [0.8, 0.8, 0.0]];
        assert!(tri_tri_intersects(&v, &u));
        // Far apart.
        let w = [[5.0, 5.0, 5.0], [6.0, 5.0, 5.0], [5.0, 6.0, 5.0]];
        assert!(!tri_tri_intersects(&v, &w));
        // Parallel planes.
        let p = [[0.0, 0.0, 1.0], [1.0, 0.0, 1.0], [0.0, 1.0, 1.0]];
        assert!(!tri_tri_intersects(&v, &p));
    }

    #[test]
    fn ir_region_matches_reference_on_random_pairs() {
        let region = Jmeint.region();
        let pairs = random_pairs(300, 17);
        let mut hits = 0;
        for pair in &pairs {
            let out = region.evaluate(pair).unwrap();
            let ir_hit = out[0] > out[1];
            let (v, u) = to_tris(pair);
            let want = tri_tri_intersects(&v, &u);
            assert_eq!(ir_hit, want, "disagreement on {pair:?}");
            hits += usize::from(want);
        }
        // Random unit-cube triangles intersect reasonably often; if not,
        // the workload (and the NN's class balance) is degenerate.
        assert!(hits > 15, "only {hits}/300 intersecting pairs");
    }

    #[test]
    fn region_is_control_heavy() {
        let counts = Jmeint.region().static_counts();
        assert!(counts.ifs >= 8, "ifs = {}", counts.ifs);
        assert_eq!(counts.function_calls, 3); // compute_intervals x2 + coplanar
        assert!(counts.instructions > 150);
    }

    #[test]
    fn app_decisions_match_reference() {
        let scale = Scale::small();
        let out = baseline_outputs(&Jmeint, &scale);
        let pairs = random_pairs(scale.tri_pairs, 0xE7A1);
        for (k, pair) in pairs.iter().enumerate() {
            let (v, u) = to_tris(pair);
            let want = tri_tri_intersects(&v, &u);
            assert_eq!(out[k] > 0.5, want, "pair {k}");
        }
    }

    #[test]
    fn shared_edge_triangles_intersect() {
        let v = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let u = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]];
        assert!(tri_tri_intersects(&v, &u));
        let flat: Vec<f32> = v
            .iter()
            .chain(u.iter())
            .flat_map(|p| p.iter().copied())
            .collect();
        let out = Jmeint.region().evaluate(&flat).unwrap();
        assert!(out[0] > out[1]);
    }
}

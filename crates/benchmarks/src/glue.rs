//! Shared plumbing for building application variants: install the precise
//! region, the NPU invocation stub, or the software neural network as the
//! function the application glue calls.

use crate::AppVariant;
use approx_ir::{FuncId, Function, Program};

/// The callee the application's glue should invoke in place of the
/// region, plus variant-specific extras.
#[derive(Debug)]
pub(crate) struct InstalledRegion {
    /// The function to call wherever the original region was called.
    pub callee: FuncId,
    /// For the NPU variant: the config-loader function `main` must call
    /// once at program start.
    pub loader: Option<FuncId>,
    /// Data to append to the application's memory image at the offset
    /// passed as `extra_base` (software-NN weight tables + scratch).
    pub extra_memory: Vec<f32>,
}

/// Installs the right callee for `variant` into `program`.
///
/// * `Precise` — adds the original region function.
/// * `Npu` — adds the `enq.d`/`deq.d` invocation stub and the `enq.c`
///   config loader.
/// * `SoftwareNn` — adds the FANN-style software network, with its weight
///   table placed at `extra_base` and activation scratch just after.
pub(crate) fn install_region(
    program: &mut Program,
    variant: &AppVariant<'_>,
    precise: Function,
    extra_base: usize,
) -> InstalledRegion {
    match variant {
        AppVariant::Precise => InstalledRegion {
            callee: program.add_function(precise),
            loader: None,
            extra_memory: Vec::new(),
        },
        AppVariant::Npu(compiled) => {
            let callee = program.add_function(compiled.invocation_stub().clone());
            let loader = program.add_function(compiled.config_loader().clone());
            InstalledRegion {
                callee,
                loader: Some(loader),
                extra_memory: Vec::new(),
            }
        }
        AppVariant::SoftwareNn(compiled) => {
            let config = compiled.config();
            let max_width = *config
                .topology()
                .layers()
                .iter()
                .max()
                .expect("topology has layers");
            let (func, table) = parrot::codegen::build_software_nn(
                config,
                extra_base as i32,
                (extra_base + table_len(config)) as i32,
            );
            debug_assert_eq!(table.len(), table_len(config));
            let mut extra_memory = table;
            extra_memory.extend(std::iter::repeat_n(0.0, 2 * max_width));
            InstalledRegion {
                callee: program.add_function(func),
                loader: None,
                extra_memory,
            }
        }
    }
}

fn table_len(config: &npu::NpuConfig) -> usize {
    config.topology().weight_count()
}

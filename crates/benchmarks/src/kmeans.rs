//! `kmeans` — k-means clustering of image pixels (machine learning).
//!
//! Lloyd's algorithm over RGB pixels; the candidate region is the
//! Euclidean distance between a pixel and a cluster centroid — "simple
//! and fine-grained yet frequently executed" (paper NN: 6→8→4→1, error
//! metric: image diff). The paper reports this benchmark *slows down*
//! under NPU acceleration: the region is so small that queue instructions
//! and NPU latency outweigh the elided work.

use crate::glue::install_region;
use crate::image::RgbImage;
use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CmpOp, FunctionBuilder, Program};
use parrot::{quality, RegionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The k-means clustering benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kmeans;

/// Builds the `euclidean_distance` region: pixel (r,g,b) and centroid
/// (cr,cg,cb) → distance.
fn build_region_function() -> approx_ir::Function {
    let mut b = FunctionBuilder::new("euclidean_distance", 6);
    let (r, g, bl) = (b.param(0), b.param(1), b.param(2));
    let (cr, cg, cb) = (b.param(3), b.param(4), b.param(5));
    let dr = b.fsub(r, cr);
    let dg = b.fsub(g, cg);
    let db = b.fsub(bl, cb);
    let dr2 = b.fmul(dr, dr);
    let dg2 = b.fmul(dg, dg);
    let db2 = b.fmul(db, db);
    let s1 = b.fadd(dr2, dg2);
    let s2 = b.fadd(s1, db2);
    let d = b.fsqrt(s2);
    b.ret(&[d]);
    b.build().expect("kmeans region is structurally valid")
}

/// Reference distance (for tests).
pub fn distance_reference(p: [f32; 3], c: [f32; 3]) -> f32 {
    ((p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2)).sqrt()
}

struct Layout {
    assign: usize,
    centroids: usize,
    sums: usize,
    out: usize,
    end: usize,
}

fn layout(dim: usize, k: usize) -> Layout {
    let px = dim * dim;
    let assign = 3 * px;
    let centroids = assign + px;
    let sums = centroids + 3 * k;
    let out = sums + 4 * k;
    Layout {
        assign,
        centroids,
        sums,
        out,
        end: out + 3 * px,
    }
}

impl Benchmark for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn domain(&self) -> &'static str {
        "machine learning"
    }

    fn error_metric(&self) -> &'static str {
        "image diff"
    }

    fn region(&self) -> RegionSpec {
        let mut program = Program::new();
        let entry = program.add_function(build_region_function());
        RegionSpec::new("euclidean_distance", program, entry, 6, 1).expect("valid region")
    }

    fn training_inputs(&self, _scale: &Scale) -> Vec<Vec<f32>> {
        // Paper: "for kmeans, we supplied random inputs to the code region
        // to avoid overtraining on a particular test image".
        let mut rng = StdRng::seed_from_u64(0x6B6D);
        (0..10_000)
            .map(|_| (0..6).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[allow(clippy::too_many_lines)]
    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App {
        let dim = scale.image_dim;
        let k = scale.kmeans_k;
        let iters = scale.kmeans_iters;
        let px = dim * dim;
        let lay = layout(dim, k);
        let mut program = Program::new();
        let installed = install_region(&mut program, variant, build_region_function(), lay.end);

        let mut b = FunctionBuilder::new("main", 0);
        if let Some(loader) = installed.loader {
            b.call(loader, &[], 0);
        }
        let one = b.consti(1);
        let three = b.consti(3);
        let four = b.consti(4);
        let zero_f = b.constf(0.0);
        let k_reg = b.consti(k as i32);
        let px_reg = b.consti(px as i32);
        let a0 = b.consti(lay.assign as i32);
        let c0 = b.consti(lay.centroids as i32);
        let s0 = b.consti(lay.sums as i32);
        let o0 = b.consti(lay.out as i32);

        // --- Initialize centroids from evenly spaced pixels. ---
        {
            let c = b.consti(0);
            let step = b.consti((px / k) as i32);
            let half = b.consti((px / (2 * k)) as i32);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, c, k_reg);
            b.branch_if(fin, done);
            let scaled = b.imul(c, step);
            let pidx = b.iadd(scaled, half);
            let paddr = b.imul(pidx, three);
            let coff = b.imul(c, three);
            let caddr = b.iadd(c0, coff);
            for ch in 0..3 {
                let v = b.load(paddr, ch);
                b.store(v, caddr, ch);
            }
            b.iadd_into(c, one);
            b.jump(top);
            b.bind(done);
        }

        // --- Lloyd iterations. ---
        let it = b.consti(0);
        let iters_reg = b.consti(iters as i32);
        let it_top = b.new_label();
        let it_done = b.new_label();
        b.bind(it_top);
        let it_fin = b.cmpi(CmpOp::Ge, it, iters_reg);
        b.branch_if(it_fin, it_done);
        {
            // Clear sums.
            let c = b.consti(0);
            let limit = b.consti((4 * k) as i32);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, c, limit);
            b.branch_if(fin, done);
            let addr = b.iadd(s0, c);
            b.store(zero_f, addr, 0);
            b.iadd_into(c, one);
            b.jump(top);
            b.bind(done);
        }
        {
            // Assignment pass: nearest centroid per pixel.
            let p = b.consti(0);
            let ptop = b.new_label();
            let pdone = b.new_label();
            b.bind(ptop);
            let pfin = b.cmpi(CmpOp::Ge, p, px_reg);
            b.branch_if(pfin, pdone);
            let paddr = b.imul(p, three);
            let r = b.load(paddr, 0);
            let g = b.load(paddr, 1);
            let bl = b.load(paddr, 2);
            let best_d = b.constf(f32::MAX);
            let best_c = b.consti(0);
            {
                let c = b.consti(0);
                let ctop = b.new_label();
                let cdone = b.new_label();
                b.bind(ctop);
                let cfin = b.cmpi(CmpOp::Ge, c, k_reg);
                b.branch_if(cfin, cdone);
                let coff = b.imul(c, three);
                let caddr = b.iadd(c0, coff);
                let cr = b.load(caddr, 0);
                let cg = b.load(caddr, 1);
                let cb = b.load(caddr, 2);
                let d = b.call(installed.callee, &[r, g, bl, cr, cg, cb], 1)[0];
                let skip = b.new_label();
                let ge = b.cmpf(CmpOp::Ge, d, best_d);
                b.branch_if(ge, skip);
                b.mov(best_d, d);
                b.mov(best_c, c);
                b.bind(skip);
                b.iadd_into(c, one);
                b.jump(ctop);
                b.bind(cdone);
            }
            // Record assignment and accumulate sums.
            let fa = b.itof(best_c);
            let aaddr = b.iadd(a0, p);
            b.store(fa, aaddr, 0);
            let soff = b.imul(best_c, four);
            let saddr = b.iadd(s0, soff);
            for (ch, v) in [(0, r), (1, g), (2, bl)] {
                let old = b.load(saddr, ch);
                let new = b.fadd(old, v);
                b.store(new, saddr, ch);
            }
            let onef = b.constf(1.0);
            let oldc = b.load(saddr, 3);
            let newc = b.fadd(oldc, onef);
            b.store(newc, saddr, 3);
            b.iadd_into(p, one);
            b.jump(ptop);
            b.bind(pdone);
        }
        {
            // Update pass: centroid = sum / count (skip empty clusters).
            let c = b.consti(0);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, c, k_reg);
            b.branch_if(fin, done);
            let soff = b.imul(c, four);
            let saddr = b.iadd(s0, soff);
            let cnt = b.load(saddr, 3);
            let skip = b.new_label();
            let empty = b.cmpf(CmpOp::Le, cnt, zero_f);
            b.branch_if(empty, skip);
            let coff = b.imul(c, three);
            let caddr = b.iadd(c0, coff);
            for ch in 0..3 {
                let s = b.load(saddr, ch);
                let m = b.fdiv(s, cnt);
                b.store(m, caddr, ch);
            }
            b.bind(skip);
            b.iadd_into(c, one);
            b.jump(top);
            b.bind(done);
        }
        b.iadd_into(it, one);
        b.jump(it_top);
        b.bind(it_done);

        // --- Output pass: paint each pixel with its centroid's color. ---
        {
            let p = b.consti(0);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, p, px_reg);
            b.branch_if(fin, done);
            let aaddr = b.iadd(a0, p);
            let fa = b.load(aaddr, 0);
            let c = b.ftoi(fa);
            let coff = b.imul(c, three);
            let caddr = b.iadd(c0, coff);
            let oaddr0 = b.imul(p, three);
            let oaddr = b.iadd(o0, oaddr0);
            for ch in 0..3 {
                let v = b.load(caddr, ch);
                b.store(v, oaddr, ch);
            }
            b.iadd_into(p, one);
            b.jump(top);
            b.bind(done);
        }
        b.ret(&[]);
        let entry = program.add_function(b.build().expect("kmeans main is valid"));

        let img = RgbImage::synthetic(dim, dim, 0xE7A1);
        let mut memory = vec![0.0f32; lay.end];
        memory[..3 * px].copy_from_slice(img.data());
        memory.extend_from_slice(&installed.extra_memory);
        App {
            program,
            entry,
            memory,
            args: vec![],
            needs_npu: variant.needs_npu(),
        }
    }

    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32> {
        let lay = layout(scale.image_dim, scale.kmeans_k);
        memory[lay.out..lay.end].to_vec()
    }

    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64 {
        quality::image_rmse(reference, approx, 1.0)
    }

    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64> {
        quality::image_errors(reference, approx, 1.0)
    }

    fn paper_topology(&self) -> Vec<usize> {
        vec![6, 8, 4, 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::baseline_outputs;

    #[test]
    fn region_matches_reference() {
        let region = Kmeans.region();
        let got = region.evaluate(&[1.0, 0.0, 0.5, 0.0, 1.0, 0.5]).unwrap()[0];
        let want = distance_reference([1.0, 0.0, 0.5], [0.0, 1.0, 0.5]);
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn region_is_small_and_straight_line() {
        let counts = Kmeans.region().static_counts();
        assert_eq!(counts.loops, 0);
        assert_eq!(counts.ifs, 0);
        assert!(counts.instructions < 20);
    }

    #[test]
    fn clustering_reduces_color_count() {
        let scale = Scale::small();
        let out = baseline_outputs(&Kmeans, &scale);
        // Output pixels can only take centroid colors: at most k distinct.
        let mut colors = std::collections::BTreeSet::new();
        for p in out.chunks_exact(3) {
            colors.insert((p[0].to_bits(), p[1].to_bits(), p[2].to_bits()));
        }
        assert!(
            colors.len() <= scale.kmeans_k,
            "{} colors for k={}",
            colors.len(),
            scale.kmeans_k
        );
        assert!(colors.len() >= 2, "clustering degenerated to one cluster");
    }

    #[test]
    fn clustered_image_resembles_source() {
        let scale = Scale::small();
        let out = baseline_outputs(&Kmeans, &scale);
        let img = RgbImage::synthetic(scale.image_dim, scale.image_dim, 0xE7A1);
        let rmse = quality::image_rmse(img.data(), &out, 1.0);
        // Quantizing to k colors loses detail but must stay recognizable.
        assert!(rmse < 0.35, "rmse = {rmse}");
    }

    #[test]
    fn training_inputs_are_random_sextuples() {
        let inputs = Kmeans.training_inputs(&Scale::small());
        assert_eq!(inputs.len(), 10_000);
        assert!(inputs.iter().all(|v| v.len() == 6));
    }
}

//! The MICRO 2012 Parrot benchmark suite (paper Table 1).
//!
//! Six applications from six domains, each with one annotated candidate
//! region, implemented in full: the region and all surrounding
//! application glue are IR programs executed by the `approx-ir`
//! interpreter, so functional outputs, dynamic instruction counts
//! (Figure 7), and cycle-level timing (Figures 8–11) all derive from the
//! same execution.
//!
//! | name | domain | region | paper NN |
//! |---|---|---|---|
//! | [`fft`] | signal processing | twiddle factor (sin+cos) | 1→4→4→2 |
//! | [`inversek2j`] | robotics | 2-joint inverse kinematics | 2→8→2 |
//! | [`jmeint`] | 3D gaming | Möller triangle intersection | 18→32→8→2 |
//! | [`jpeg`] | compression | 8×8 DCT + quantization | 64→16→64 |
//! | [`kmeans`] | machine learning | RGB Euclidean distance | 6→8→4→1 |
//! | [`sobel`] | image processing | 3×3 Sobel gradient | 9→8→1 |
//!
//! Input substitution: the paper trains on lena/mandrill/peppers and
//! evaluates on distinct images and fresh random inputs; we use seeded
//! procedural images ([`image`]) of the same dimensions and seeded random
//! inputs, with disjoint seeds for training and evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
mod glue;
pub mod image;
pub mod inversek2j;
pub mod jmeint;
pub mod jpeg;
pub mod kmeans;
pub mod runner;
pub mod sobel;

use approx_ir::{FuncId, Program, Value};
use parrot::{CompiledRegion, RegionSpec};
use serde::{Deserialize, Serialize};

/// Problem sizes for one evaluation run.
///
/// Serializable so the experiment harness can fold the evaluation sizes
/// into its content-addressed cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Side length of square test images (paper: 220×220 evaluation
    /// images).
    pub image_dim: usize,
    /// FFT size in complex points (paper: 2048 random values).
    pub fft_points: usize,
    /// Random coordinate pairs for `inversek2j` (paper: 10,000).
    pub ik_pairs: usize,
    /// Random triangle pairs for `jmeint` (paper: 10,000).
    pub tri_pairs: usize,
    /// Lloyd iterations for `kmeans`.
    pub kmeans_iters: usize,
    /// Cluster count for `kmeans`.
    pub kmeans_k: usize,
}

impl Scale {
    /// The paper's evaluation input sizes.
    pub fn paper() -> Self {
        Scale {
            image_dim: 220,
            fft_points: 2048,
            ik_pairs: 10_000,
            tri_pairs: 10_000,
            kmeans_iters: 2,
            kmeans_k: 6,
        }
    }

    /// Small sizes for tests and quick demos.
    pub fn small() -> Self {
        Scale {
            image_dim: 32,
            fft_points: 256,
            ik_pairs: 200,
            tri_pairs: 200,
            kmeans_iters: 1,
            kmeans_k: 4,
        }
    }
}

/// Which implementation of the candidate region the application runs.
#[derive(Debug, Clone, Copy)]
pub enum AppVariant<'a> {
    /// The original, precise region code (the paper's baseline).
    Precise,
    /// The Parrot-transformed program: config loader at start, then
    /// `enq.d`/`deq.d` invocation stubs in place of region calls.
    Npu(&'a CompiledRegion),
    /// The transformed program evaluating the network *in software* on
    /// the core (the paper's FANN comparison, Figure 9).
    SoftwareNn(&'a CompiledRegion),
}

impl AppVariant<'_> {
    /// The compiled region, if this variant uses one.
    pub fn compiled(&self) -> Option<&CompiledRegion> {
        match self {
            AppVariant::Precise => None,
            AppVariant::Npu(c) | AppVariant::SoftwareNn(c) => Some(c),
        }
    }

    /// Whether the interpreter needs an NPU port attached.
    pub fn needs_npu(&self) -> bool {
        matches!(self, AppVariant::Npu(_))
    }
}

/// A fully materialized application, ready to interpret.
#[derive(Debug, Clone)]
pub struct App {
    /// Glue + region (or stub) functions.
    pub program: Program,
    /// The application's entry function.
    pub entry: FuncId,
    /// Initial data memory (inputs preloaded).
    pub memory: Vec<f32>,
    /// Entry-function arguments.
    pub args: Vec<Value>,
    /// Whether the program executes NPU queue instructions.
    pub needs_npu: bool,
}

/// One benchmark of the suite.
pub trait Benchmark {
    /// Short name (Table 1's first column).
    fn name(&self) -> &'static str;

    /// Application domain (Table 1's "Type" column).
    fn domain(&self) -> &'static str;

    /// Human-readable error metric name (Table 1's "Error Metric").
    fn error_metric(&self) -> &'static str;

    /// The annotated candidate region.
    fn region(&self) -> RegionSpec;

    /// Region-level training inputs (the paper's training input set —
    /// disjoint from evaluation inputs).
    fn training_inputs(&self, scale: &Scale) -> Vec<Vec<f32>>;

    /// Builds the full application in the given variant.
    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App;

    /// Extracts the application's output elements from finished memory.
    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32>;

    /// Whole-application error between precise and approximate outputs
    /// (Table 1's "Error" column).
    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64;

    /// Per-output-element errors (Figure 6's CDF input).
    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64>;

    /// The network topology the paper's search selected, as a regression
    /// anchor for Table 1 comparisons.
    fn paper_topology(&self) -> Vec<usize>;
}

/// All six benchmarks, in the paper's Table 1 order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(fft::Fft),
        Box::new(inversek2j::InverseK2j),
        Box::new(jmeint::Jmeint),
        Box::new(jpeg::Jpeg),
        Box::new(kmeans::Kmeans),
        Box::new(sobel::Sobel),
    ]
}

/// Looks a benchmark up by name.
pub fn benchmark_by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all_benchmarks().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_six() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("sobel").is_some());
        assert!(benchmark_by_name("nope").is_none());
    }

    #[test]
    fn regions_satisfy_parrot_criteria() {
        // Fixed-size inputs/outputs, consistent with the paper's arities.
        for b in all_benchmarks() {
            let r = b.region();
            let t = b.paper_topology();
            assert_eq!(r.n_inputs(), t[0], "{} inputs", b.name());
            assert_eq!(r.n_outputs(), *t.last().unwrap(), "{} outputs", b.name());
        }
    }
}

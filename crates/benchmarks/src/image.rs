//! Seeded procedural test images.
//!
//! The paper trains its image benchmarks on three standard 512×512 images
//! (lena, mandrill, peppers) and evaluates on a distinct 220×220 image.
//! Those images are licensed data we do not ship; instead we synthesize
//! deterministic images with comparable structure — smooth gradients,
//! hard edges (shapes), and texture (value noise) — which exercise the
//! same code paths and error behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An RGB image with `f32` channels in `[0, 1]`, row-major, interleaved
/// `r g b` per pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl RgbImage {
    /// Creates a black image.
    pub fn black(width: usize, height: usize) -> Self {
        RgbImage {
            width,
            height,
            data: vec![0.0; width * height * 3],
        }
    }

    /// Synthesizes a deterministic test image: a diagonal gradient base,
    /// several filled circles and rectangles (edges), and low-amplitude
    /// per-pixel noise (texture).
    #[allow(clippy::needless_range_loop)] // c indexes per-channel arrays
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = RgbImage::black(width, height);
        // Gradient base with per-channel phase.
        let phase: [f32; 3] = [rng.gen(), rng.gen(), rng.gen()];
        for y in 0..height {
            for x in 0..width {
                let fx = x as f32 / width.max(1) as f32;
                let fy = y as f32 / height.max(1) as f32;
                for c in 0..3 {
                    let v = 0.25 + 0.5 * ((fx + fy) * 0.5 + phase[c]) % 1.0;
                    img.set(x, y, c, v.clamp(0.0, 1.0));
                }
            }
        }
        // Shapes: circles and axis-aligned rectangles with random colors.
        let n_shapes = 6 + (width / 32).min(10);
        for _ in 0..n_shapes {
            let color: [f32; 3] = [rng.gen(), rng.gen(), rng.gen()];
            if rng.gen_bool(0.5) {
                let cx = rng.gen_range(0..width) as i64;
                let cy = rng.gen_range(0..height) as i64;
                let r = rng.gen_range(2..(width / 4).max(3)) as i64;
                for y in (cy - r).max(0)..(cy + r).min(height as i64) {
                    for x in (cx - r).max(0)..(cx + r).min(width as i64) {
                        if (x - cx).pow(2) + (y - cy).pow(2) <= r * r {
                            for c in 0..3 {
                                img.set(x as usize, y as usize, c, color[c]);
                            }
                        }
                    }
                }
            } else {
                let x0 = rng.gen_range(0..width);
                let y0 = rng.gen_range(0..height);
                let w = rng.gen_range(1..=(width - x0));
                let h = rng.gen_range(1..=(height - y0));
                for y in y0..(y0 + h).min(height) {
                    for x in x0..(x0 + w).min(width) {
                        for c in 0..3 {
                            img.set(x, y, c, color[c]);
                        }
                    }
                }
            }
        }
        // Texture noise.
        for v in &mut img.data {
            let n: f32 = rng.gen_range(-0.03..0.03);
            *v = (*v + n).clamp(0.0, 1.0);
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel channel accessor.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn get(&self, x: usize, y: usize, c: usize) -> f32 {
        self.data[(y * self.width + x) * 3 + c]
    }

    /// Pixel channel setter.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: f32) {
        self.data[(y * self.width + x) * 3 + c] = v;
    }

    /// The interleaved channel data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Luma (Rec. 601) conversion: `0.299 r + 0.587 g + 0.114 b`.
    pub fn to_gray(&self) -> Vec<f32> {
        self.data
            .chunks_exact(3)
            .map(|p| 0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = RgbImage::synthetic(64, 64, 7);
        let b = RgbImage::synthetic(64, 64, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RgbImage::synthetic(64, 64, 7);
        let b = RgbImage::synthetic(64, 64, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn values_stay_in_unit_range() {
        let img = RgbImage::synthetic(48, 48, 3);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn image_has_edges_and_texture() {
        // A usable test image needs real horizontal gradients, or sobel
        // and jpeg degenerate.
        let img = RgbImage::synthetic(64, 64, 5);
        let gray = img.to_gray();
        let mut strong_edges = 0;
        for y in 0..64 {
            for x in 1..64 {
                if (gray[y * 64 + x] - gray[y * 64 + x - 1]).abs() > 0.2 {
                    strong_edges += 1;
                }
            }
        }
        assert!(strong_edges > 50, "only {strong_edges} edges");
    }

    #[test]
    fn gray_matches_rec601() {
        let mut img = RgbImage::black(1, 1);
        img.set(0, 0, 0, 1.0);
        img.set(0, 0, 1, 0.5);
        img.set(0, 0, 2, 0.25);
        let g = img.to_gray();
        assert!((g[0] - (0.299 + 0.587 * 0.5 + 0.114 * 0.25)).abs() < 1e-6);
    }
}

//! `sobel` — Sobel edge detection (paper Figure 2's running example).
//!
//! The application converts an RGB image to grayscale, then slides a 3×3
//! window over it, calling the `sobel` function per pixel to estimate the
//! intensity gradient. The `sobel` function — nine inputs, one output,
//! pure, hot — is the candidate region (paper NN: 9→8→1, error metric:
//! image diff).

use crate::glue::install_region;
use crate::image::RgbImage;
use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CmpOp, FunctionBuilder, Program, Reg};
use parrot::{quality, RegionSpec};

/// The Sobel edge-detection benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sobel;

/// Builds the `sobel` region: 3×3 window → gradient magnitude, clamped
/// to 1.0 (one conditional, matching the original's single `if`).
fn build_region_function() -> approx_ir::Function {
    let mut b = FunctionBuilder::new("sobel", 9);
    let p: Vec<Reg> = (0..9).map(|i| b.param(i)).collect();
    let two = b.constf(2.0);
    // Gx = (p2 + 2 p5 + p8) - (p0 + 2 p3 + p6)
    let t1 = b.fmul(two, p[5]);
    let t2 = b.fadd(p[2], t1);
    let xp = b.fadd(t2, p[8]);
    let t3 = b.fmul(two, p[3]);
    let t4 = b.fadd(p[0], t3);
    let xm = b.fadd(t4, p[6]);
    let gx = b.fsub(xp, xm);
    // Gy = (p6 + 2 p7 + p8) - (p0 + 2 p1 + p2)
    let t5 = b.fmul(two, p[7]);
    let t6 = b.fadd(p[6], t5);
    let yp = b.fadd(t6, p[8]);
    let t7 = b.fmul(two, p[1]);
    let t8 = b.fadd(p[0], t7);
    let ym = b.fadd(t8, p[2]);
    let gy = b.fsub(yp, ym);
    // r = sqrt(gx^2 + gy^2), clamped: if (r > 1.0) r = 1.0;
    let gx2 = b.fmul(gx, gx);
    let gy2 = b.fmul(gy, gy);
    let s = b.fadd(gx2, gy2);
    let r = b.fsqrt(s);
    let one = b.constf(1.0);
    let keep = b.new_label();
    let le = b.cmpf(CmpOp::Le, r, one);
    b.branch_if(le, keep);
    b.mov(r, one);
    b.bind(keep);
    b.ret(&[r]);
    b.build().expect("sobel region is structurally valid")
}

/// Memory layout of the sobel application (the RGB input occupies
/// `[0, 3·dim²)`).
struct Layout {
    gray: usize,
    out: usize,
    end: usize,
}

fn layout(dim: usize) -> Layout {
    let px = dim * dim;
    Layout {
        gray: 3 * px,
        out: 3 * px + px,
        end: 3 * px + 2 * px,
    }
}

impl Sobel {
    fn training_image_dim(scale: &Scale) -> usize {
        if scale.image_dim >= 220 {
            512
        } else {
            48
        }
    }
}

impl Benchmark for Sobel {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn domain(&self) -> &'static str {
        "image processing"
    }

    fn error_metric(&self) -> &'static str {
        "image diff"
    }

    fn region(&self) -> RegionSpec {
        let mut program = Program::new();
        let entry = program.add_function(build_region_function());
        // Normalized grayscale window; bounds the static precision report.
        RegionSpec::new("sobel", program, entry, 9, 1)
            .expect("valid region")
            .with_input_range(0.0, 1.0)
    }

    fn training_inputs(&self, scale: &Scale) -> Vec<Vec<f32>> {
        // Paper: one 512×512 training image provides abundant samples
        // ("training sobel on a single test image provides ~260k training
        // data points"). We use a distinct seed from evaluation.
        let dim = Self::training_image_dim(scale);
        let gray = RgbImage::synthetic(dim, dim, 0x7EA1).to_gray();
        let mut windows = Vec::new();
        let stride = if dim >= 512 { 3 } else { 1 };
        for y in (1..dim - 1).step_by(stride) {
            for x in (1..dim - 1).step_by(stride) {
                let mut w = Vec::with_capacity(9);
                for dy in 0..3 {
                    for dx in 0..3 {
                        w.push(gray[(y + dy - 1) * dim + (x + dx - 1)]);
                    }
                }
                windows.push(w);
            }
        }
        windows
    }

    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App {
        let dim = scale.image_dim;
        let lay = layout(dim);
        let mut program = Program::new();
        let installed = install_region(&mut program, variant, build_region_function(), lay.end);

        let w = dim as i32;
        let mut b = FunctionBuilder::new("main", 0);
        if let Some(loader) = installed.loader {
            b.call(loader, &[], 0);
        }
        let one = b.consti(1);
        // --- Grayscale pass: gray[i] = .299 r + .587 g + .114 b ---
        {
            let i = b.consti(0);
            let n = b.consti((dim * dim) as i32);
            let three = b.consti(3);
            let g0 = b.consti(lay.gray as i32);
            let cr = b.constf(0.299);
            let cg = b.constf(0.587);
            let cb = b.constf(0.114);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, i, n);
            b.branch_if(fin, done);
            let base = b.imul(i, three);
            let r = b.load(base, 0);
            let g = b.load(base, 1);
            let bl = b.load(base, 2);
            let tr = b.fmul(r, cr);
            let tg = b.fmul(g, cg);
            let tb = b.fmul(bl, cb);
            let s1 = b.fadd(tr, tg);
            let gray = b.fadd(s1, tb);
            let gaddr = b.iadd(g0, i);
            b.store(gray, gaddr, 0);
            b.iadd_into(i, one);
            b.jump(top);
            b.bind(done);
        }
        // --- Sobel pass over interior pixels ---
        {
            let y = b.consti(1);
            let ymax = b.consti((dim - 1) as i32);
            let x_start = b.consti(1);
            let xmax = b.consti((dim - 1) as i32);
            let width = b.consti(w);
            let g0 = b.consti(lay.gray as i32);
            let o0 = b.consti(lay.out as i32);
            let ytop = b.new_label();
            let ydone = b.new_label();
            b.bind(ytop);
            let yfin = b.cmpi(CmpOp::Ge, y, ymax);
            b.branch_if(yfin, ydone);
            {
                let x = b.reg();
                b.mov(x, x_start);
                let xtop = b.new_label();
                let xdone = b.new_label();
                b.bind(xtop);
                let xfin = b.cmpi(CmpOp::Ge, x, xmax);
                b.branch_if(xfin, xdone);
                let row = b.imul(y, width);
                let idx = b.iadd(row, x);
                let base = b.iadd(g0, idx);
                // The 3x3 window as constant offsets around the center.
                let mut window = Vec::with_capacity(9);
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        window.push(b.load(base, dy * w + dx));
                    }
                }
                let out = b.call(installed.callee, &window, 1);
                let oaddr = b.iadd(o0, idx);
                b.store(out[0], oaddr, 0);
                b.iadd_into(x, one);
                b.jump(xtop);
                b.bind(xdone);
            }
            b.iadd_into(y, one);
            b.jump(ytop);
            b.bind(ydone);
        }
        b.ret(&[]);
        let entry = program.add_function(b.build().expect("sobel main is valid"));

        let img = RgbImage::synthetic(dim, dim, 0xE7A1); // evaluation image
        let mut memory = vec![0.0f32; lay.end];
        memory[..3 * dim * dim].copy_from_slice(img.data());
        memory.extend_from_slice(&installed.extra_memory);
        App {
            program,
            entry,
            memory,
            args: vec![],
            needs_npu: variant.needs_npu(),
        }
    }

    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32> {
        let lay = layout(scale.image_dim);
        memory[lay.out..lay.end].to_vec()
    }

    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64 {
        quality::image_rmse(reference, approx, 1.0)
    }

    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64> {
        quality::image_errors(reference, approx, 1.0)
    }

    fn paper_topology(&self) -> Vec<usize> {
        vec![9, 8, 1]
    }
}

/// Reference Rust implementation of the sobel region (for tests).
pub fn sobel_reference(p: &[f32; 9]) -> f32 {
    let gx = (p[2] + 2.0 * p[5] + p[8]) - (p[0] + 2.0 * p[3] + p[6]);
    let gy = (p[6] + 2.0 * p[7] + p[8]) - (p[0] + 2.0 * p[1] + p[2]);
    (gx * gx + gy * gy).sqrt().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{baseline_outputs, run_functional};

    #[test]
    fn region_matches_reference() {
        let region = Sobel.region();
        let cases: [[f32; 9]; 3] = [
            [0.0; 9],
            [1.0, 0.0, 1.0, 0.0, 0.5, 0.0, 1.0, 0.0, 1.0],
            [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        ];
        for case in cases {
            let got = region.evaluate(&case).unwrap()[0];
            let want = sobel_reference(&case);
            assert!((got - want).abs() < 1e-6, "{case:?}: {got} vs {want}");
        }
    }

    #[test]
    fn region_clamps_large_gradients() {
        let region = Sobel.region();
        let case = [0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        assert_eq!(region.evaluate(&case).unwrap()[0], 1.0);
    }

    #[test]
    fn baseline_app_detects_edges() {
        let scale = Scale::small();
        let out = baseline_outputs(&Sobel, &scale);
        assert_eq!(out.len(), scale.image_dim * scale.image_dim);
        // The synthetic image has shapes: some pixels must be edge-strong.
        let strong = out.iter().filter(|&&v| v > 0.5).count();
        assert!(strong > 10, "only {strong} strong edge pixels");
        // And the borders stay zero (never written).
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn app_matches_direct_computation() {
        // Cross-validate the IR app against a straight Rust loop.
        let scale = Scale::small();
        let dim = scale.image_dim;
        let out = baseline_outputs(&Sobel, &scale);
        let gray = RgbImage::synthetic(dim, dim, 0xE7A1).to_gray();
        for (y, x) in [(1usize, 1usize), (5, 9), (dim - 2, dim - 2)] {
            let mut w = [0.0f32; 9];
            for dy in 0..3 {
                for dx in 0..3 {
                    w[dy * 3 + dx] = gray[(y + dy - 1) * dim + (x + dx - 1)];
                }
            }
            let want = sobel_reference(&w);
            let got = out[y * dim + x];
            assert!((got - want).abs() < 1e-5, "({x},{y}): {got} vs {want}");
        }
    }

    #[test]
    fn training_inputs_are_windows() {
        let inputs = Sobel.training_inputs(&Scale::small());
        assert!(inputs.len() > 500);
        assert!(inputs.iter().all(|w| w.len() == 9));
    }

    #[test]
    fn counts_report_one_if() {
        let counts = Sobel.region().static_counts();
        assert_eq!(counts.ifs, 1);
        assert_eq!(counts.loops, 0);
        assert_eq!(counts.function_calls, 0);
    }

    #[test]
    fn identical_outputs_mean_zero_error() {
        let out = baseline_outputs(&Sobel, &Scale::small());
        assert_eq!(Sobel.app_error(&out, &out), 0.0);
    }

    #[test]
    fn precise_variant_needs_no_npu() {
        let app = Sobel.build_app(&AppVariant::Precise, &Scale::small());
        assert!(!app.needs_npu);
        assert!(run_functional(&app, &AppVariant::Precise).is_ok());
    }
}

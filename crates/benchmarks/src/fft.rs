//! `fft` — radix-2 Cooley–Tukey fast Fourier transform (signal
//! processing).
//!
//! An in-place iterative FFT over a random complex signal. The candidate
//! region is the twiddle-factor kernel — the `sin`/`cos` pair computed
//! per butterfly, dominated by libm calls (paper NN: 1→4→4→2, error
//! metric: average relative error).

use crate::glue::install_region;
use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CmpOp, FunctionBuilder, Program};
use parrot::{quality, RegionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The FFT benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fft;

/// Builds the `fft_twiddle` region: fraction `f = j/len` → `(cos θ, sin
/// θ)` with `θ = -2πf`.
fn build_region_function() -> approx_ir::Function {
    let mut b = FunctionBuilder::new("fft_twiddle", 1);
    let f = b.param(0);
    let c = b.constf(-2.0 * std::f32::consts::PI);
    let t = b.fmul(c, f);
    let wr = b.fcos(t);
    let wi = b.fsin(t);
    b.ret(&[wr, wi]);
    b.build().expect("fft region is structurally valid")
}

/// Reference twiddle (for tests).
pub fn twiddle_reference(f: f32) -> (f32, f32) {
    let t = -2.0 * std::f32::consts::PI * f;
    (t.cos(), t.sin())
}

/// Reference recursive FFT used to validate the IR implementation.
pub fn fft_reference(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert!(n.is_power_of_two());
    // Bit-reverse permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j -= bit;
            bit >>= 1;
        }
        j += bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let f = k as f32 / len as f32;
                let (wr, wi) = twiddle_reference(f);
                let (a, bidx) = (start + k, start + k + half);
                let (xr, xi) = (re[bidx], im[bidx]);
                let (tr, ti) = (wr * xr - wi * xi, wr * xi + wi * xr);
                let (ur, ui) = (re[a], im[a]);
                re[bidx] = ur - tr;
                im[bidx] = ui - ti;
                re[a] = ur + tr;
                im[a] = ui + ti;
            }
        }
        len *= 2;
    }
}

fn eval_signal(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

impl Benchmark for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn domain(&self) -> &'static str {
        "signal processing"
    }

    fn error_metric(&self) -> &'static str {
        "average relative error"
    }

    fn region(&self) -> RegionSpec {
        let mut program = Program::new();
        let entry = program.add_function(build_region_function());
        RegionSpec::new("fft_twiddle", program, entry, 1, 2).expect("valid region")
    }

    fn training_inputs(&self, scale: &Scale) -> Vec<Vec<f32>> {
        // Paper: 32,768 random floating-point numbers. The region's input
        // domain is the twiddle fraction j/len ∈ [0, 0.5).
        let n = if scale.fft_points >= 2048 {
            32_768
        } else {
            2_000
        };
        let mut rng = StdRng::seed_from_u64(0xFF7);
        (0..n).map(|_| vec![rng.gen_range(0.0..0.5f32)]).collect()
    }

    #[allow(clippy::too_many_lines)]
    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App {
        let n = scale.fft_points;
        assert!(n.is_power_of_two(), "fft size must be a power of two");
        let end = 2 * n; // re at [0, n), im at [n, 2n)
        let mut program = Program::new();
        let installed = install_region(&mut program, variant, build_region_function(), end);

        let mut b = FunctionBuilder::new("main", 0);
        if let Some(loader) = installed.loader {
            b.call(loader, &[], 0);
        }
        let one = b.consti(1);
        let n_reg = b.consti(n as i32);
        let im0 = b.consti(n as i32);
        let zero_i = b.consti(0);

        // --- Bit-reverse permutation. ---
        {
            let j = b.consti(0);
            let i = b.consti(1);
            let top = b.new_label();
            let done = b.new_label();
            b.bind(top);
            let fin = b.cmpi(CmpOp::Ge, i, n_reg);
            b.branch_if(fin, done);
            {
                let bit = b.ishr(n_reg, one);
                let wtop = b.new_label();
                let wdone = b.new_label();
                b.bind(wtop);
                let masked = b.iand(j, bit);
                let clear = b.cmpi(CmpOp::Eq, masked, zero_i);
                b.branch_if(clear, wdone);
                let j2 = b.isub(j, bit);
                b.mov(j, j2);
                let bit2 = b.ishr(bit, one);
                b.mov(bit, bit2);
                b.jump(wtop);
                b.bind(wdone);
                b.iadd_into(j, bit);
            }
            {
                let skip = b.new_label();
                let ge = b.cmpi(CmpOp::Ge, i, j);
                b.branch_if(ge, skip);
                // Swap re[i]<->re[j] and im[i]<->im[j].
                let iaddr_im = b.iadd(im0, i);
                let jaddr_im = b.iadd(im0, j);
                let tr = b.load(i, 0);
                let or = b.load(j, 0);
                b.store(or, i, 0);
                b.store(tr, j, 0);
                let ti = b.load(iaddr_im, 0);
                let oi = b.load(jaddr_im, 0);
                b.store(oi, iaddr_im, 0);
                b.store(ti, jaddr_im, 0);
                b.bind(skip);
            }
            b.iadd_into(i, one);
            b.jump(top);
            b.bind(done);
        }

        // --- Butterfly stages. ---
        {
            let len = b.consti(2);
            let stage_top = b.new_label();
            let stage_done = b.new_label();
            b.bind(stage_top);
            let sfin = b.cmpi(CmpOp::Gt, len, n_reg);
            b.branch_if(sfin, stage_done);
            let half = b.ishr(len, one);
            let flen = b.itof(len);
            {
                let start = b.consti(0);
                let gtop = b.new_label();
                let gdone = b.new_label();
                b.bind(gtop);
                let gfin = b.cmpi(CmpOp::Ge, start, n_reg);
                b.branch_if(gfin, gdone);
                {
                    let k = b.consti(0);
                    let ktop = b.new_label();
                    let kdone = b.new_label();
                    b.bind(ktop);
                    let kfin = b.cmpi(CmpOp::Ge, k, half);
                    b.branch_if(kfin, kdone);
                    let fk = b.itof(k);
                    let f = b.fdiv(fk, flen);
                    let w = b.call(installed.callee, &[f], 2);
                    let (wr, wi) = (w[0], w[1]);
                    let a = b.iadd(start, k);
                    let bidx = b.iadd(a, half);
                    let a_im = b.iadd(im0, a);
                    let b_im = b.iadd(im0, bidx);
                    let xr = b.load(bidx, 0);
                    let xi = b.load(b_im, 0);
                    // t = w * x
                    let t1 = b.fmul(wr, xr);
                    let t2 = b.fmul(wi, xi);
                    let tr = b.fsub(t1, t2);
                    let t3 = b.fmul(wr, xi);
                    let t4 = b.fmul(wi, xr);
                    let ti = b.fadd(t3, t4);
                    let ur = b.load(a, 0);
                    let ui = b.load(a_im, 0);
                    let br = b.fsub(ur, tr);
                    let bi = b.fsub(ui, ti);
                    b.store(br, bidx, 0);
                    b.store(bi, b_im, 0);
                    let ar = b.fadd(ur, tr);
                    let ai = b.fadd(ui, ti);
                    b.store(ar, a, 0);
                    b.store(ai, a_im, 0);
                    b.iadd_into(k, one);
                    b.jump(ktop);
                    b.bind(kdone);
                }
                b.iadd_into(start, len);
                b.jump(gtop);
                b.bind(gdone);
            }
            let doubled = b.ishl(len, one);
            b.mov(len, doubled);
            b.jump(stage_top);
            b.bind(stage_done);
        }
        b.ret(&[]);
        let entry = program.add_function(b.build().expect("fft main is valid"));

        let mut memory = vec![0.0f32; end];
        memory[..n].copy_from_slice(&eval_signal(n, 0xE7A1));
        memory.extend_from_slice(&installed.extra_memory);
        App {
            program,
            entry,
            memory,
            args: vec![],
            needs_npu: variant.needs_npu(),
        }
    }

    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32> {
        memory[..2 * scale.fft_points].to_vec()
    }

    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64 {
        quality::mean_relative_error(reference, approx, spectrum_epsilon(reference))
    }

    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64> {
        quality::relative_errors(reference, approx, spectrum_epsilon(reference))
    }

    fn paper_topology(&self) -> Vec<usize> {
        vec![1, 4, 4, 2]
    }
}

/// Relative-error guard: 5 % of the spectrum's mean magnitude, so
/// near-zero bins do not dominate the metric.
fn spectrum_epsilon(reference: &[f32]) -> f32 {
    let mean_abs = reference.iter().map(|v| v.abs()).sum::<f32>() / reference.len().max(1) as f32;
    (0.05 * mean_abs).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::baseline_outputs;

    #[test]
    fn region_matches_reference() {
        let region = Fft.region();
        for i in 0..10 {
            let f = i as f32 / 20.0;
            let got = region.evaluate(&[f]).unwrap();
            let (wr, wi) = twiddle_reference(f);
            assert!((got[0] - wr).abs() < 1e-6);
            assert!((got[1] - wi).abs() < 1e-6);
        }
    }

    #[test]
    fn reference_fft_matches_naive_dft() {
        let n = 16;
        let sig = eval_signal(n, 3);
        let mut re = sig.clone();
        let mut im = vec![0.0f32; n];
        fft_reference(&mut re, &mut im);
        for k in 0..n {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for (x, &v) in sig.iter().enumerate() {
                let t = -2.0 * std::f64::consts::PI * (k * x) as f64 / n as f64;
                sr += v as f64 * t.cos();
                si += v as f64 * t.sin();
            }
            assert!((re[k] as f64 - sr).abs() < 1e-3, "bin {k} re");
            assert!((im[k] as f64 - si).abs() < 1e-3, "bin {k} im");
        }
    }

    #[test]
    fn ir_app_matches_reference_fft() {
        let scale = Scale {
            fft_points: 64,
            ..Scale::small()
        };
        let out = baseline_outputs(&Fft, &scale);
        let mut re = eval_signal(64, 0xE7A1);
        let mut im = vec![0.0f32; 64];
        fft_reference(&mut re, &mut im);
        for i in 0..64 {
            assert!(
                (out[i] - re[i]).abs() < 1e-3,
                "re[{i}]: {} vs {}",
                out[i],
                re[i]
            );
            assert!(
                (out[64 + i] - im[i]).abs() < 1e-3,
                "im[{i}]: {} vs {}",
                out[64 + i],
                im[i]
            );
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let scale = Scale {
            fft_points: 256,
            ..Scale::small()
        };
        let out = baseline_outputs(&Fft, &scale);
        let sig = eval_signal(256, 0xE7A1);
        let time_energy: f64 = sig.iter().map(|&v| (v as f64).powi(2)).sum();
        let freq_energy: f64 = (0..256)
            .map(|i| (out[i] as f64).powi(2) + (out[256 + i] as f64).powi(2))
            .sum::<f64>()
            / 256.0;
        assert!(
            (time_energy - freq_energy).abs() / time_energy < 1e-4,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn training_fractions_cover_half_interval() {
        let inputs = Fft.training_inputs(&Scale::small());
        assert!(inputs.iter().all(|v| (0.0..0.5).contains(&v[0])));
    }
}

//! `inversek2j` — inverse kinematics for a 2-joint arm (robotics).
//!
//! Given a target end-effector position `(x, y)`, compute joint angles
//! `(θ1, θ2)` for a two-link arm. The whole algorithm is the candidate
//! region — the paper calls it "an ideal case: the entire algorithm has a
//! fixed-size input, fixed-size output, and tolerance for imprecision"
//! (paper NN: 2→8→2, error metric: average relative error).

use crate::glue::install_region;
use crate::{App, AppVariant, Benchmark, Scale};
use approx_ir::{CmpOp, FunctionBuilder, Program};
use parrot::{quality, RegionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper-arm link length.
pub const L1: f32 = 0.5;
/// Forearm link length.
pub const L2: f32 = 0.5;

/// The inverse-kinematics benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct InverseK2j;

/// Builds the `inversek2j` region: `(x, y) → (θ1, θ2)` via the law of
/// cosines (one `acos`, two `atan2`, one `sqrt` — libm-heavy, which is
/// why this benchmark benefits most from the NPU).
fn build_region_function() -> approx_ir::Function {
    let mut b = FunctionBuilder::new("inversek2j", 2);
    let (x, y) = (b.param(0), b.param(1));
    let xx = b.fmul(x, x);
    let yy = b.fmul(y, y);
    let d2 = b.fadd(xx, yy);
    // cos θ2 = (d² - l1² - l2²) / (2 l1 l2), clamped to [-1, 1].
    let lsum = b.constf(L1 * L1 + L2 * L2);
    let num = b.fsub(d2, lsum);
    let denom = b.constf(2.0 * L1 * L2);
    let c2 = b.fdiv(num, denom);
    let neg1 = b.constf(-1.0);
    let pos1 = b.constf(1.0);
    let c2lo = b.fmax(c2, neg1);
    let c2c = b.fmin(c2lo, pos1);
    let th2 = b.facos(c2c);
    // sin θ2 = sqrt(1 - cos²θ2) (θ2 ∈ [0, π]).
    let c2sq = b.fmul(c2c, c2c);
    let om = b.fsub(pos1, c2sq);
    let zero = b.constf(0.0);
    let omc = b.fmax(om, zero);
    let s2 = b.fsqrt(omc);
    // θ1 = atan2(y, x) - atan2(l2 sinθ2, l1 + l2 cosθ2)
    let l2r = b.constf(L2);
    let k2 = b.fmul(l2r, s2);
    let l1r = b.constf(L1);
    let l2c2 = b.fmul(l2r, c2c);
    let k1 = b.fadd(l1r, l2c2);
    let a1 = b.fatan2(y, x);
    let a2 = b.fatan2(k2, k1);
    let th1 = b.fsub(a1, a2);
    b.ret(&[th1, th2]);
    b.build().expect("inversek2j region is structurally valid")
}

/// Forward kinematics (generates reachable targets and validates results).
pub fn forward_kinematics(th1: f32, th2: f32) -> (f32, f32) {
    (
        L1 * th1.cos() + L2 * (th1 + th2).cos(),
        L1 * th1.sin() + L2 * (th1 + th2).sin(),
    )
}

/// Reference Rust implementation of the region (for tests).
pub fn inversek2j_reference(x: f32, y: f32) -> (f32, f32) {
    let d2 = x * x + y * y;
    let c2 = ((d2 - L1 * L1 - L2 * L2) / (2.0 * L1 * L2)).clamp(-1.0, 1.0);
    let th2 = c2.acos();
    let s2 = (1.0 - c2 * c2).max(0.0).sqrt();
    let th1 = y.atan2(x) - (L2 * s2).atan2(L1 + L2 * c2);
    (th1, th2)
}

fn random_targets(n: usize, seed: u64) -> Vec<(f32, f32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Sample reachable targets by sampling joint angles and
            // running forward kinematics (the paper generates "uniform
            // random inputs in the permissible range of parameters").
            let th1 = rng.gen_range(0.1..std::f32::consts::FRAC_PI_2);
            let th2 = rng.gen_range(0.1..std::f32::consts::FRAC_PI_2);
            forward_kinematics(th1, th2)
        })
        .collect()
}

impl Benchmark for InverseK2j {
    fn name(&self) -> &'static str {
        "inversek2j"
    }

    fn domain(&self) -> &'static str {
        "robotics"
    }

    fn error_metric(&self) -> &'static str {
        "average relative error"
    }

    fn region(&self) -> RegionSpec {
        let mut program = Program::new();
        let entry = program.add_function(build_region_function());
        RegionSpec::new("inversek2j", program, entry, 2, 2).expect("valid region")
    }

    fn training_inputs(&self, scale: &Scale) -> Vec<Vec<f32>> {
        // Paper: 10,000 random (x, y) coordinates, disjoint from the
        // evaluation set (different seed).
        random_targets(scale.ik_pairs.max(1000), 0x7121)
            .into_iter()
            .map(|(x, y)| vec![x, y])
            .collect()
    }

    fn build_app(&self, variant: &AppVariant<'_>, scale: &Scale) -> App {
        let n = scale.ik_pairs;
        // Layout: targets (x, y) at 0..2n, output angles at 2n..4n.
        let out_base = 2 * n;
        let end = 4 * n;
        let mut program = Program::new();
        let installed = install_region(&mut program, variant, build_region_function(), end);

        let mut b = FunctionBuilder::new("main", 0);
        if let Some(loader) = installed.loader {
            b.call(loader, &[], 0);
        }
        let one = b.consti(1);
        let two = b.consti(2);
        let i = b.consti(0);
        let count = b.consti(n as i32);
        let o0 = b.consti(out_base as i32);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        let fin = b.cmpi(CmpOp::Ge, i, count);
        b.branch_if(fin, done);
        let base = b.imul(i, two);
        let x = b.load(base, 0);
        let y = b.load(base, 1);
        let out = b.call(installed.callee, &[x, y], 2);
        let oaddr = b.iadd(o0, base);
        b.store(out[0], oaddr, 0);
        b.store(out[1], oaddr, 1);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(done);
        b.ret(&[]);
        let entry = program.add_function(b.build().expect("inversek2j main is valid"));

        let mut memory = vec![0.0f32; end];
        for (k, (x, y)) in random_targets(n, 0xE7A1_u64).iter().enumerate() {
            memory[2 * k] = *x;
            memory[2 * k + 1] = *y;
        }
        memory.extend_from_slice(&installed.extra_memory);
        App {
            program,
            entry,
            memory,
            args: vec![],
            needs_npu: variant.needs_npu(),
        }
    }

    fn extract_outputs(&self, memory: &[f32], scale: &Scale) -> Vec<f32> {
        let n = scale.ik_pairs;
        memory[2 * n..4 * n].to_vec()
    }

    fn app_error(&self, reference: &[f32], approx: &[f32]) -> f64 {
        quality::mean_relative_error(reference, approx, 0.05)
    }

    fn element_errors(&self, reference: &[f32], approx: &[f32]) -> Vec<f64> {
        quality::relative_errors(reference, approx, 0.05)
    }

    fn paper_topology(&self) -> Vec<usize> {
        vec![2, 8, 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::baseline_outputs;

    #[test]
    fn region_matches_reference() {
        let region = InverseK2j.region();
        for (x, y) in random_targets(20, 5) {
            let got = region.evaluate(&[x, y]).unwrap();
            let (t1, t2) = inversek2j_reference(x, y);
            assert!((got[0] - t1).abs() < 1e-5, "θ1 at ({x},{y})");
            assert!((got[1] - t2).abs() < 1e-5, "θ2 at ({x},{y})");
        }
    }

    #[test]
    fn inverse_inverts_forward() {
        // IK(FK(θ)) must land the end effector back on the target.
        for (x, y) in random_targets(50, 9) {
            let (t1, t2) = inversek2j_reference(x, y);
            let (fx, fy) = forward_kinematics(t1, t2);
            assert!(
                (fx - x).abs() < 1e-4 && (fy - y).abs() < 1e-4,
                "target ({x},{y}) reconstructed as ({fx},{fy})"
            );
        }
    }

    #[test]
    fn app_computes_angles_for_all_targets() {
        let scale = Scale::small();
        let out = baseline_outputs(&InverseK2j, &scale);
        assert_eq!(out.len(), 2 * scale.ik_pairs);
        // Every θ2 of a reachable interior target is in (0, π).
        for pair in out.chunks_exact(2) {
            assert!(pair[1] >= 0.0 && pair[1] <= std::f32::consts::PI + 1e-3);
        }
    }

    #[test]
    fn training_and_eval_sets_differ() {
        let train = InverseK2j.training_inputs(&Scale::small());
        let eval = random_targets(Scale::small().ik_pairs, 0xE7A1_u64);
        assert_ne!(train[0][0], eval[0].0);
    }

    #[test]
    fn region_is_trig_heavy() {
        // The speedup story depends on the region being dominated by
        // expensive libm operations.
        let region = InverseK2j.region();
        let counts = region.static_counts();
        assert!(counts.instructions < 40, "region should be small");
    }
}

//! Compiling the whole benchmark suite (the expensive, shared step).

use ann::{SearchParams, TrainParams};
use benchmarks::{all_benchmarks, Benchmark, Scale};
use npu::NpuParams;
use parrot::{CompileParams, CompiledRegion, ParrotCompiler};

/// Parrot compilation parameters used by the harness.
///
/// The paper's search space (two hidden layers, powers of two up to 32)
/// is kept in both modes; `fast` reduces epochs, samples, and the largest
/// hidden layer so a single-core run stays interactive.
pub fn compile_params(fast: bool) -> CompileParams {
    if fast {
        CompileParams {
            search: SearchParams {
                max_hidden_layers: 2,
                max_hidden_neurons: 16,
                train: TrainParams {
                    epochs: 150,
                    learning_rate: 0.05,
                    momentum: 0.9,
                    ..TrainParams::default()
                },
                epoch_flops_budget: Some(200_000_000),
                ..SearchParams::default()
            },
            npu: NpuParams::default(),
            max_training_samples: 700,
        }
    } else {
        CompileParams {
            search: SearchParams {
                max_hidden_layers: 2,
                max_hidden_neurons: 32,
                train: TrainParams {
                    // Cap, not target: the flops budget gives small
                    // candidates many epochs and large ones few.
                    epochs: 800,
                    learning_rate: 0.05,
                    momentum: 0.9,
                    ..TrainParams::default()
                },
                epoch_flops_budget: Some(3_000_000_000),
                // Accuracy ties are broken toward lower NPU latency; the
                // paper's published topologies are consistently small
                // (9→8→1, 2→8→2, …), implying a generous tie window when
                // candidates are all near-perfect — but a genuine accuracy
                // gap (jmeint) must still win.
                accuracy_slack: 1.10,
                accuracy_abs_slack: 2e-4,
                ..SearchParams::default()
            },
            npu: NpuParams::default(),
            max_training_samples: 10_000,
        }
    }
}

/// One benchmark plus its Parrot compilation result.
pub struct SuiteEntry {
    /// The benchmark.
    pub bench: Box<dyn Benchmark>,
    /// The trained, placed NPU configuration and replacement code.
    pub compiled: CompiledRegion,
}

/// The compiled suite: every benchmark trained and ready to evaluate.
pub struct Suite {
    /// Evaluation input sizes.
    pub scale: Scale,
    /// Per-benchmark entries (Table 1 order).
    pub entries: Vec<SuiteEntry>,
}

impl Suite {
    /// Observes, trains, and code-generates every benchmark (optionally
    /// filtered by name). Progress goes to stderr.
    ///
    /// # Panics
    ///
    /// Panics if a region fails to compile — that is a harness bug, not
    /// an input condition.
    pub fn compile(scale: Scale, fast: bool, only: Option<&str>) -> Suite {
        let params = compile_params(fast);
        let compiler = ParrotCompiler::new(params);
        let mut entries = Vec::new();
        for bench in all_benchmarks() {
            if let Some(name) = only {
                if bench.name() != name {
                    continue;
                }
            }
            let t0 = std::time::Instant::now();
            eprintln!("[compile] {}: observing + training…", bench.name());
            let region = bench.region();
            let training = bench.training_inputs(&scale);
            let compiled = compiler
                .compile(&region, &training)
                .unwrap_or_else(|e| panic!("compiling {} failed: {e}", bench.name()));
            eprintln!(
                "[compile] {}: {} (test mse {:.5}) in {:.1?}",
                bench.name(),
                compiled.config().topology(),
                compiled.nn_mse(),
                t0.elapsed(),
            );
            entries.push(SuiteEntry { bench, compiled });
        }
        assert!(
            !entries.is_empty(),
            "no benchmark matched the --bench filter"
        );
        Suite { scale, entries }
    }
}

//! The suite-wide Parrot compilation budgets.
//!
//! Compilation itself (observe → train → codegen) is scheduled per
//! benchmark by the experiment harness (`crates/harness`), which caches
//! and parallelizes it; this module only defines the parameters.

use ann::{SearchParams, TrainParams};
use npu::NpuParams;
use parrot::CompileParams;

/// Parrot compilation parameters used by the experiment binaries.
///
/// The paper's search space (two hidden layers, powers of two up to 32)
/// is kept in both modes; `fast` reduces epochs, samples, and the largest
/// hidden layer so a single-core run stays interactive.
pub fn compile_params(fast: bool) -> CompileParams {
    if fast {
        CompileParams {
            search: SearchParams {
                max_hidden_layers: 2,
                max_hidden_neurons: 16,
                train: TrainParams {
                    epochs: 150,
                    learning_rate: 0.05,
                    momentum: 0.9,
                    ..TrainParams::default()
                },
                epoch_flops_budget: Some(200_000_000),
                ..SearchParams::default()
            },
            npu: NpuParams::default(),
            max_training_samples: 700,
        }
    } else {
        CompileParams {
            search: SearchParams {
                max_hidden_layers: 2,
                max_hidden_neurons: 32,
                train: TrainParams {
                    // Cap, not target: the flops budget gives small
                    // candidates many epochs and large ones few.
                    epochs: 800,
                    learning_rate: 0.05,
                    momentum: 0.9,
                    ..TrainParams::default()
                },
                epoch_flops_budget: Some(3_000_000_000),
                // Accuracy ties are broken toward lower NPU latency; the
                // paper's published topologies are consistently small
                // (9→8→1, 2→8→2, …), implying a generous tie window when
                // candidates are all near-perfect — but a genuine accuracy
                // gap (jmeint) must still win.
                accuracy_slack: 1.10,
                accuracy_abs_slack: 2e-4,
                ..SearchParams::default()
            },
            npu: NpuParams::default(),
            max_training_samples: 10_000,
        }
    }
}

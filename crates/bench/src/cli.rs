//! Minimal argument handling shared by the experiment binaries.

use benchmarks::Scale;
use std::path::PathBuf;
use telemetry::Level;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Reduced input sizes and training budget (CI-friendly).
    pub fast: bool,
    /// Restrict to one benchmark by name.
    pub only: Option<String>,
    /// Structured-tracing verbosity (`--log-level`, default off).
    pub log_level: Level,
    /// Directory for per-benchmark JSON run reports (`--json-out`).
    pub json_out: Option<PathBuf>,
    /// Chrome trace-event output file (`--trace-out`, loadable in
    /// Perfetto / `chrome://tracing` and readable by `parrot-trace`).
    pub trace_out: Option<PathBuf>,
    /// Counter-sampling interval in microseconds while tracing
    /// (`--trace-sample-us`, default 10000).
    pub trace_sample_us: u64,
    /// Worker threads for the experiment scheduler (`--jobs`, 0 = one per
    /// core).
    pub jobs: usize,
    /// Content-addressed artifact-cache directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Root seed every derived seed flows from (`--seed`).
    pub seed: u64,
    /// Exit non-zero unless every job was served from the cache
    /// (`--require-warm`, for CI cache checks).
    pub require_warm: bool,
    /// Positional experiment names (`table1`, `fig8`, …); empty = the
    /// binary's default set.
    pub experiments: Vec<String>,
}

impl Options {
    /// Parses `std::env::args()` and applies the telemetry options: the
    /// global level is set, and a stderr event printer is installed when
    /// tracing is enabled.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    pub fn from_args() -> Self {
        let mut fast = false;
        let mut only = None;
        let mut log_level = Level::Off;
        let mut json_out = None;
        let mut trace_out = None;
        let mut trace_sample_us = 10_000u64;
        let mut jobs = 0usize;
        let mut cache_dir = None;
        let mut seed = harness::DEFAULT_ROOT_SEED;
        let mut require_warm = false;
        let mut experiments = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => fast = true,
                "--paper" => fast = false,
                "--bench" => {
                    only = Some(args.next().unwrap_or_else(|| usage("--bench needs a name")));
                }
                "--jobs" | "-j" => {
                    let value = args.next().unwrap_or_else(|| usage("--jobs needs a count"));
                    jobs = value
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("--jobs: not a count: {value}")));
                }
                "--cache-dir" => {
                    let dir = args
                        .next()
                        .unwrap_or_else(|| usage("--cache-dir needs a directory"));
                    cache_dir = Some(PathBuf::from(dir));
                }
                "--seed" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| usage("--seed needs a number"));
                    seed = value
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("--seed: not a number: {value}")));
                }
                "--require-warm" => require_warm = true,
                "--log-level" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| usage("--log-level needs a level"));
                    log_level = Level::parse(&value).unwrap_or_else(|| {
                        usage(&format!(
                            "unknown log level {value} (off|error|warn|info|debug|trace)"
                        ))
                    });
                }
                "--json-out" => {
                    let dir = args
                        .next()
                        .unwrap_or_else(|| usage("--json-out needs a directory"));
                    json_out = Some(PathBuf::from(dir));
                }
                "--trace-out" => {
                    let file = args
                        .next()
                        .unwrap_or_else(|| usage("--trace-out needs a file"));
                    trace_out = Some(PathBuf::from(file));
                }
                "--trace-sample-us" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| usage("--trace-sample-us needs a number"));
                    trace_sample_us = value.parse().unwrap_or_else(|_| {
                        usage(&format!("--trace-sample-us: not a number: {value}"))
                    });
                }
                "--help" | "-h" => usage(""),
                other if !other.starts_with('-') => experiments.push(other.to_string()),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        // The stderr printer follows the user's explicit --log-level; the
        // trace sink additionally needs span/flow/counter events, which
        // are emitted at Info, so tracing raises the global level floor.
        if log_level > Level::Off {
            telemetry::install_stderr_sink();
        }
        if trace_out.is_some() && log_level < Level::Info {
            log_level = Level::Info;
        }
        telemetry::set_level(log_level);
        if let Some(path) = &trace_out {
            if let Err(e) = telemetry::install_trace_sink(path) {
                usage(&format!("--trace-out {}: {e}", path.display()));
            }
        }
        Options {
            fast,
            only,
            log_level,
            json_out,
            trace_out,
            trace_sample_us,
            jobs,
            cache_dir,
            seed,
            require_warm,
            experiments,
        }
    }

    /// The evaluation input sizes implied by the options.
    pub fn scale(&self) -> Scale {
        if self.fast {
            // Between `Scale::small` (tests) and the paper's sizes: large
            // enough for meaningful timing shapes, small enough for quick
            // runs.
            Scale {
                image_dim: 96,
                fft_points: 1024,
                ik_pairs: 2_000,
                tri_pairs: 2_000,
                kmeans_iters: 1,
                kmeans_k: 6,
            }
        } else {
            Scale::paper()
        }
    }

    /// The run-mode name recorded in run reports.
    pub fn mode(&self) -> &'static str {
        if self.fast {
            "fast"
        } else {
            "paper"
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <binary> [experiments…] [--fast|--paper] [--bench <name>] [--jobs N]");
    eprintln!("                [--cache-dir <dir>] [--seed N] [--require-warm]");
    eprintln!("                [--log-level <level>] [--json-out <dir>]");
    eprintln!("                [--trace-out <file>] [--trace-sample-us N]");
    eprintln!("  experiments    table1 fig6 fig7 fig8 fig9 fig10 fig11 report (default: all)");
    eprintln!("  --fast         reduced inputs and training budget");
    eprintln!("  --paper        the paper's input sizes (default)");
    eprintln!(
        "  --bench        run a single benchmark (fft, inversek2j, jmeint, jpeg, kmeans, sobel)"
    );
    eprintln!("  --jobs, -j     scheduler worker threads (default: one per core)");
    eprintln!("  --cache-dir    content-addressed artifact cache (re-runs become cache hits)");
    eprintln!("  --seed         root seed for all derived randomness (default 0xdeadbeef)");
    eprintln!("  --require-warm exit non-zero unless every job came from the cache");
    eprintln!("  --log-level    structured tracing verbosity: off|error|warn|info|debug|trace (default off)");
    eprintln!(
        "  --json-out     write JSON run reports (per benchmark + sweep) into this directory"
    );
    eprintln!("  --trace-out    write a Chrome trace-event JSON file (Perfetto, parrot-trace)");
    eprintln!("  --trace-sample-us  counter-sampling interval while tracing (default 10000)");
    std::process::exit(2);
}

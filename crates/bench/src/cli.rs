//! Minimal argument handling shared by the experiment binaries.

use benchmarks::Scale;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Reduced input sizes and training budget (CI-friendly).
    pub fast: bool,
    /// Restrict to one benchmark by name.
    pub only: Option<String>,
}

impl Options {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    pub fn from_args() -> Self {
        let mut fast = false;
        let mut only = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => fast = true,
                "--paper" => fast = false,
                "--bench" => {
                    only = Some(args.next().unwrap_or_else(|| usage("--bench needs a name")));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        Options { fast, only }
    }

    /// The evaluation input sizes implied by the options.
    pub fn scale(&self) -> Scale {
        if self.fast {
            // Between `Scale::small` (tests) and the paper's sizes: large
            // enough for meaningful timing shapes, small enough for quick
            // runs.
            Scale {
                image_dim: 96,
                fft_points: 1024,
                ik_pairs: 2_000,
                tri_pairs: 2_000,
                kmeans_iters: 1,
                kmeans_k: 6,
            }
        } else {
            Scale::paper()
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <binary> [--fast|--paper] [--bench <name>]");
    eprintln!("  --fast   reduced inputs and training budget");
    eprintln!("  --paper  the paper's input sizes (default)");
    eprintln!("  --bench  run a single benchmark (fft, inversek2j, jmeint, jpeg, kmeans, sobel)");
    std::process::exit(2);
}

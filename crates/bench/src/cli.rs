//! Minimal argument handling shared by the experiment binaries.

use benchmarks::Scale;
use std::path::PathBuf;
use telemetry::Level;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Reduced input sizes and training budget (CI-friendly).
    pub fast: bool,
    /// Restrict to one benchmark by name.
    pub only: Option<String>,
    /// Structured-tracing verbosity (`--log-level`, default off).
    pub log_level: Level,
    /// Directory for per-benchmark JSON run reports (`--json-out`).
    pub json_out: Option<PathBuf>,
}

impl Options {
    /// Parses `std::env::args()` and applies the telemetry options: the
    /// global level is set, and a stderr event printer is installed when
    /// tracing is enabled.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    pub fn from_args() -> Self {
        let mut fast = false;
        let mut only = None;
        let mut log_level = Level::Off;
        let mut json_out = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => fast = true,
                "--paper" => fast = false,
                "--bench" => {
                    only = Some(args.next().unwrap_or_else(|| usage("--bench needs a name")));
                }
                "--log-level" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| usage("--log-level needs a level"));
                    log_level = Level::parse(&value).unwrap_or_else(|| {
                        usage(&format!(
                            "unknown log level {value} (off|error|warn|info|debug|trace)"
                        ))
                    });
                }
                "--json-out" => {
                    let dir = args
                        .next()
                        .unwrap_or_else(|| usage("--json-out needs a directory"));
                    json_out = Some(PathBuf::from(dir));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        telemetry::set_level(log_level);
        if log_level > Level::Off {
            telemetry::install_stderr_sink();
        }
        Options {
            fast,
            only,
            log_level,
            json_out,
        }
    }

    /// The evaluation input sizes implied by the options.
    pub fn scale(&self) -> Scale {
        if self.fast {
            // Between `Scale::small` (tests) and the paper's sizes: large
            // enough for meaningful timing shapes, small enough for quick
            // runs.
            Scale {
                image_dim: 96,
                fft_points: 1024,
                ik_pairs: 2_000,
                tri_pairs: 2_000,
                kmeans_iters: 1,
                kmeans_k: 6,
            }
        } else {
            Scale::paper()
        }
    }

    /// The run-mode name recorded in run reports.
    pub fn mode(&self) -> &'static str {
        if self.fast {
            "fast"
        } else {
            "paper"
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <binary> [--fast|--paper] [--bench <name>] [--log-level <level>] [--json-out <dir>]");
    eprintln!("  --fast       reduced inputs and training budget");
    eprintln!("  --paper      the paper's input sizes (default)");
    eprintln!(
        "  --bench      run a single benchmark (fft, inversek2j, jmeint, jpeg, kmeans, sobel)"
    );
    eprintln!("  --log-level  structured tracing verbosity: off|error|warn|info|debug|trace (default off)");
    eprintln!("  --json-out   write one JSON run report per benchmark into this directory");
    std::process::exit(2);
}

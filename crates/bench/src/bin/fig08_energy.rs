//! Regenerates Figure 8b: whole-application energy reduction with an
//! 8-PE NPU and with a hypothetical zero-energy ("ideal") NPU.

use bench::format::{geomean, render_table};
use bench::{Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let rows = lab.fig8();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}x", r.energy_reduction),
                format!("{:.2}x", r.ideal_energy_reduction),
            ]
        })
        .collect();
    if rows.len() > 1 {
        let e: Vec<f64> = rows.iter().map(|r| r.energy_reduction).collect();
        let i: Vec<f64> = rows.iter().map(|r| r.ideal_energy_reduction).collect();
        table.push(vec![
            "geomean".into(),
            format!("{:.2}x", geomean(&e)),
            format!("{:.2}x", geomean(&i)),
        ]);
    }
    println!("\nFigure 8b: total application energy reduction with 8-PE NPU");
    println!(
        "{}",
        render_table(&["benchmark", "Core+NPU", "Core+Ideal NPU"], &table)
    );
}

//! Regenerates Figure 8b: whole-application energy reduction with an
//! 8-PE NPU and with a hypothetical zero-energy ("ideal") NPU. (The Fig8
//! experiment prints both the speedup and energy tables; this binary and
//! `fig08_speedup` share it.)

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("fig08_energy", &opts, &[Experiment::Fig8]));
}

//! Regenerates Table 1: benchmark characterization and Parrot results.

use bench::{format::render_table, Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    print_table1(&mut lab);
}

/// Prints Table 1 from a prepared lab (shared with `run_all`).
pub fn print_table1(lab: &mut Lab) {
    let rows = lab.table1();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.domain.clone(),
                r.calls.to_string(),
                r.loops.to_string(),
                r.ifs.to_string(),
                r.instructions.to_string(),
                r.training_samples.to_string(),
                r.topology.clone(),
                format!("{:.5}", r.nn_mse),
                r.error_metric.clone(),
                format!("{:.2}%", 100.0 * r.app_error),
            ]
        })
        .collect();
    println!("\nTable 1: benchmarks, transformed-function characterization, and Parrot results");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "domain",
                "#calls",
                "#loops",
                "#ifs",
                "#insts",
                "#train",
                "NN topology",
                "NN MSE",
                "error metric",
                "error",
            ],
            &table
        )
    );
}

//! Regenerates Table 1: benchmark characterization and Parrot results.

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("table1", &opts, &[Experiment::Table1]));
}

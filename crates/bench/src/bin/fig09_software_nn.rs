//! Regenerates Figure 9: slowdown when the transformed program evaluates
//! the neural network in software on the CPU (the paper's FANN
//! comparison) instead of invoking the NPU.

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("fig09_software_nn", &opts, &[Experiment::Fig9]));
}

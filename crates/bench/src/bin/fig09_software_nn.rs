//! Regenerates Figure 9: slowdown when the transformed program evaluates
//! the neural network in software on the CPU (the paper's FANN
//! comparison) instead of invoking the NPU.

use bench::format::{geomean, render_table};
use bench::{Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let rows = lab.fig9();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.clone(), format!("{:.2}x", r.slowdown)])
        .collect();
    if rows.len() > 1 {
        let s: Vec<f64> = rows.iter().map(|r| r.slowdown).collect();
        table.push(vec!["geomean".into(), format!("{:.2}x", geomean(&s))]);
    }
    println!("\nFigure 9: slowdown with software neural network execution");
    println!("{}", render_table(&["benchmark", "slowdown"], &table));
}

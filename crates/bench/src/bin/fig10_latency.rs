//! Regenerates Figure 10: sensitivity of the application speedup to the
//! CPU↔NPU communication latency (1–16 cycles each way).

use bench::format::render_table;
use bench::{Lab, Options, Suite};

const LATENCIES: [u64; 5] = [1, 2, 4, 8, 16];

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let rows = lab.fig10(&LATENCIES);
    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(LATENCIES.iter().map(|l| format!("{l} cycle(s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.speedups.iter().map(|(_, s)| format!("{s:.2}x")));
            row
        })
        .collect();
    println!("\nFigure 10: speedup sensitivity to NPU communication latency");
    println!("{}", render_table(&header_refs, &table));
}

//! Regenerates Figure 10: sensitivity of the application speedup to the
//! CPU↔NPU communication latency (1–16 cycles each way).

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("fig10_latency", &opts, &[Experiment::Fig10]));
}

//! Regenerates Figure 7: dynamic instruction count of the transformed
//! program (split into NPU queue instructions and other instructions)
//! normalized to the untransformed baseline.

use bench::{format::render_table, Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let rows = lab.fig7();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.baseline.to_string(),
                format!("{:.3}", r.npu_other as f64 / r.baseline as f64),
                format!("{:.3}", r.npu_queue as f64 / r.baseline as f64),
                format!("{:.3}", r.normalized_total()),
            ]
        })
        .collect();
    println!("\nFigure 7: normalized dynamic instructions after the Parrot transformation");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "baseline insts",
                "other (norm)",
                "queue (norm)",
                "total (norm)"
            ],
            &table
        )
    );
}

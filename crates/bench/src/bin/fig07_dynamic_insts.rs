//! Regenerates Figure 7: dynamic instruction count of the transformed
//! program (split into NPU queue instructions and other instructions)
//! normalized to the untransformed baseline.

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run(
        "fig07_dynamic_insts",
        &opts,
        &[Experiment::Fig7],
    ));
}

//! Training-hyperparameter ablation tool: trains one benchmark's paper
//! topology under several (epochs, learning-rate, momentum) settings and
//! reports the held-out MSE of each. Useful for calibrating the harness's
//! compile budgets.

use ann::{Dataset, Mlp, Topology, TrainParams, Trainer};
use benchmarks::{benchmark_by_name, Scale};
use parrot::observe;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sobel".into());
    let bench = benchmark_by_name(&name).expect("unknown benchmark");
    let region = bench.region();
    let training = bench.training_inputs(&Scale::paper());
    eprintln!(
        "[tune] {} observation over {} inputs…",
        name,
        training.len()
    );
    let obs = observe(&region, &training).expect("observation must succeed");

    // Normalize (what the compiler trains on).
    let mut data = Dataset::new(obs.data.n_inputs(), obs.data.n_outputs());
    for (i, o) in obs.data.iter() {
        let mut iv = i.to_vec();
        let mut ov = o.to_vec();
        obs.input_norm.normalize(&mut iv);
        obs.output_norm.normalize(&mut ov);
        data.push(&iv, &ov).unwrap();
    }
    let topology = Topology::new(bench.paper_topology()).unwrap();

    for &samples in &[1000usize, 2000, 4000] {
        let capped = data.subsample(samples, 7);
        let (train, test) = capped.split(0.7, 3);
        for &(epochs, lr, mu) in &[
            (100usize, 0.05f32, 0.0f32),
            (100, 0.05, 0.9),
            (300, 0.05, 0.9),
            (300, 0.01, 0.9),
            (1000, 0.01, 0.9),
        ] {
            let t0 = std::time::Instant::now();
            let mut mlp = Mlp::seeded(topology.clone(), 42);
            let params = TrainParams {
                epochs,
                learning_rate: lr,
                momentum: mu,
                ..TrainParams::default()
            };
            Trainer::new(params).train(&mut mlp, &train);
            let test_mse = mse_of(&mlp, &test);
            println!(
                "{name} {topology} samples={samples:<5} epochs={epochs:<5} lr={lr:<5} mu={mu:<4} -> test mse {test_mse:.6}  ({:.1?})",
                t0.elapsed()
            );
        }
    }
}

fn mse_of(mlp: &Mlp, data: &Dataset) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (i, o) in data.iter() {
        let y = mlp.feed_forward(i);
        for (a, b) in y.iter().zip(o) {
            total += ((a - b) as f64).powi(2);
            n += 1;
        }
    }
    total / n as f64
}

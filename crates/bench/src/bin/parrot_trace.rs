//! `parrot-trace`: offline profiler over a `--trace-out` trace file.
//!
//! Reads the Chrome trace-event JSON a `parrot-run --trace-out` sweep
//! wrote and prints, without needing the original DAG:
//!
//! * the sweep's critical path (longest dependency chain by wall clock,
//!   recovered from the `JobDone` instant events' embedded edge lists);
//! * per-phase self time vs total time (from the `"X"` span events'
//!   parent links);
//! * the top-k slowest jobs;
//! * counter-track summaries (queue depth, cache traffic, …);
//! * the histogram distributions from the `parrotHistograms` footer.

use serde::Content;
use std::collections::BTreeMap;

fn main() {
    let mut path = None;
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let v = args.next().unwrap_or_else(|| usage("--top needs a count"));
                top = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("--top: not a count: {v}")));
            }
            "--help" | "-h" => usage(""),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| usage("missing trace file"));
    std::process::exit(run(&path, top));
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: parrot-trace <trace.json> [--top N]");
    eprintln!("  <trace.json>  a file written by parrot-run --trace-out");
    eprintln!("  --top N       slowest-job rows to print (default 10)");
    std::process::exit(2);
}

/// One completed span (`"X"` event).
struct SpanRec {
    name: String,
    dur_us: u64,
    span: u64,
    parent: u64,
    aborted: bool,
}

/// One terminal job state (`JobDone` instant).
struct JobRec {
    job: u64,
    name: String,
    deps: Vec<u64>,
    worker: u64,
    outcome: String,
    end_us: u64,
    elapsed_us: u64,
}

fn str_of(c: &Content) -> Option<&str> {
    match c {
        Content::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn field_u64(c: &Content, key: &str) -> Option<u64> {
    c.get(key).and_then(Content::as_u64)
}

fn run(path: &str, top: usize) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let root = match serde::json::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    let Some(Content::Seq(items)) = root.get("traceEvents") else {
        eprintln!("error: {path} has no traceEvents array (not a parrot trace?)");
        return 1;
    };

    let mut spans = Vec::new();
    let mut jobs = Vec::new();
    // Counter tracks: name → (samples, last, max).
    let mut counters: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
    for ev in items {
        let Some(ph) = ev.get("ph").and_then(str_of) else {
            continue;
        };
        let args = ev.get("args");
        match ph {
            "X" => spans.push(SpanRec {
                name: ev.get("name").and_then(str_of).unwrap_or("?").to_string(),
                dur_us: field_u64(ev, "dur").unwrap_or(0),
                span: args.and_then(|a| field_u64(a, "span")).unwrap_or(0),
                parent: args.and_then(|a| field_u64(a, "parent")).unwrap_or(0),
                aborted: matches!(
                    args.and_then(|a| a.get("aborted")),
                    Some(Content::Bool(true))
                ),
            }),
            "i" if ev.get("cat").and_then(str_of) == Some("job") => {
                let Some(args) = args else { continue };
                let deps = match args.get("deps") {
                    Some(Content::Seq(d)) => d.iter().filter_map(Content::as_u64).collect(),
                    _ => Vec::new(),
                };
                jobs.push(JobRec {
                    job: field_u64(args, "job").unwrap_or(0),
                    name: ev.get("name").and_then(str_of).unwrap_or("?").to_string(),
                    deps,
                    worker: field_u64(args, "worker").unwrap_or(0),
                    outcome: args
                        .get("outcome")
                        .and_then(str_of)
                        .unwrap_or("?")
                        .to_string(),
                    end_us: field_u64(ev, "ts").unwrap_or(0),
                    elapsed_us: field_u64(args, "elapsed_us").unwrap_or(0),
                });
            }
            "C" => {
                let name = ev.get("name").and_then(str_of).unwrap_or("?");
                let value = args
                    .and_then(|a| a.get("value"))
                    .and_then(Content::as_f64)
                    .unwrap_or(0.0);
                let entry = counters
                    .entry(name.to_string())
                    .or_insert((0, value, value));
                entry.0 += 1;
                entry.1 = value;
                entry.2 = entry.2.max(value);
            }
            _ => {}
        }
    }

    println!("trace: {path}");
    println!(
        "  {} span(s), {} job(s), {} counter track(s)",
        spans.len(),
        jobs.len(),
        counters.len()
    );

    print_critical_path(&jobs);
    print_phases(&spans);
    print_slowest(&jobs, top);
    print_counters(&counters);
    print_histograms(root.get("parrotHistograms"));
    0
}

/// Longest dependency chain by job wall clock, recovered purely from the
/// `JobDone` edge lists (no original DAG needed). Skipped jobs carry zero
/// duration, so they never dominate a chain.
fn print_critical_path(jobs: &[JobRec]) {
    if jobs.is_empty() {
        return;
    }
    let by_id: BTreeMap<u64, &JobRec> = jobs.iter().map(|j| (j.job, j)).collect();
    // Longest-path DP in job-id order (the harness hands out ids in
    // insertion order, so every dependency has a smaller id).
    let mut chain_us: BTreeMap<u64, u64> = BTreeMap::new();
    let mut best_dep: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    for (&id, job) in &by_id {
        let (dep, upstream) = job
            .deps
            .iter()
            .filter_map(|d| chain_us.get(d).map(|&us| (Some(*d), us)))
            .max_by_key(|&(_, us)| us)
            .unwrap_or((None, 0));
        chain_us.insert(id, upstream + job.elapsed_us);
        best_dep.insert(id, dep);
    }
    let Some((&tail, &total_us)) = chain_us.iter().max_by_key(|&(_, &us)| us) else {
        return;
    };
    let mut path = vec![tail];
    while let Some(Some(dep)) = best_dep.get(path.last().expect("non-empty")) {
        path.push(*dep);
    }
    path.reverse();

    let start_us = jobs.iter().map(|j| j.end_us - j.elapsed_us).min().unwrap();
    let end_us = jobs.iter().map(|j| j.end_us).max().unwrap();
    println!(
        "\ncritical path ({} job(s), {}):",
        path.len(),
        fmt_us(total_us)
    );
    for id in path {
        let j = by_id[&id];
        println!(
            "  #{:<4} {:<28} {:>10}  worker {}  [{}]",
            j.job,
            j.name,
            fmt_us(j.elapsed_us),
            j.worker,
            j.outcome
        );
    }
    println!(
        "  span of all jobs: {} (critical path covers {:.0}%)",
        fmt_us(end_us - start_us),
        100.0 * total_us as f64 / (end_us - start_us).max(1) as f64
    );
}

/// Per-phase totals: `total` sums every span of that name; `self`
/// subtracts the time covered by child spans, so a phase that merely
/// waits on children shows near-zero self time.
fn print_phases(spans: &[SpanRec]) {
    if spans.is_empty() {
        return;
    }
    let name_of: BTreeMap<u64, &str> = spans.iter().map(|s| (s.span, s.name.as_str())).collect();
    struct Agg {
        count: u64,
        total_us: u64,
        self_us: i64,
        aborted: u64,
    }
    let mut phases: BTreeMap<&str, Agg> = BTreeMap::new();
    for s in spans {
        let a = phases.entry(&s.name).or_insert(Agg {
            count: 0,
            total_us: 0,
            self_us: 0,
            aborted: 0,
        });
        a.count += 1;
        a.total_us += s.dur_us;
        a.self_us += s.dur_us as i64;
        a.aborted += u64::from(s.aborted);
    }
    for s in spans {
        if let Some(parent_name) = name_of.get(&s.parent) {
            if let Some(a) = phases.get_mut(parent_name) {
                a.self_us -= s.dur_us as i64;
            }
        }
    }
    let mut rows: Vec<_> = phases.into_iter().collect();
    rows.sort_by_key(|(_, a)| std::cmp::Reverse(a.total_us));
    println!("\nphases (self vs total):");
    println!(
        "  {:<32} {:>6} {:>12} {:>12}",
        "phase", "count", "self", "total"
    );
    for (name, a) in rows {
        let aborted = if a.aborted > 0 {
            format!("  ({} aborted)", a.aborted)
        } else {
            String::new()
        };
        println!(
            "  {:<32} {:>6} {:>12} {:>12}{aborted}",
            name,
            a.count,
            fmt_us(a.self_us.max(0) as u64),
            fmt_us(a.total_us)
        );
    }
}

fn print_slowest(jobs: &[JobRec], top: usize) {
    if jobs.is_empty() || top == 0 {
        return;
    }
    let mut sorted: Vec<&JobRec> = jobs.iter().collect();
    sorted.sort_by_key(|j| std::cmp::Reverse(j.elapsed_us));
    println!("\nslowest jobs:");
    for j in sorted.into_iter().take(top) {
        println!(
            "  #{:<4} {:<28} {:>10}  worker {}  [{}]",
            j.job,
            j.name,
            fmt_us(j.elapsed_us),
            j.worker,
            j.outcome
        );
    }
}

fn print_counters(counters: &BTreeMap<String, (u64, f64, f64)>) {
    if counters.is_empty() {
        return;
    }
    println!("\ncounters:");
    println!(
        "  {:<36} {:>8} {:>12} {:>12}",
        "counter", "samples", "last", "max"
    );
    for (name, (n, last, max)) in counters {
        println!("  {name:<36} {n:>8} {last:>12.2} {max:>12.2}");
    }
}

fn print_histograms(footer: Option<&Content>) {
    let Some(Content::Map(entries)) = footer else {
        return;
    };
    if entries.is_empty() {
        return;
    }
    println!("\nhistograms:");
    println!(
        "  {:<36} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "name", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (name, content) in entries {
        // Round-trip through JSON text: the footer stores full serialized
        // histograms, so percentile queries run on the real bucket state.
        let json = serde::json::to_string(content);
        match serde::json::from_str::<telemetry::Histogram>(&json) {
            Ok(hist) => println!(
                "  {:<36} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name,
                hist.count,
                hist.mean(),
                hist.p50(),
                hist.p90(),
                hist.p99(),
                hist.max
            ),
            Err(e) => println!("  {name:<36} (unreadable: {e})"),
        }
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

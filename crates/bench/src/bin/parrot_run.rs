//! The unified experiment entry point: runs any subset of the paper's
//! experiments (`parrot-run table1 fig8 …`, default all) on the harness
//! scheduler, with `--jobs N` parallelism and a `--cache-dir`
//! content-addressed artifact cache making re-runs and interrupted
//! sweeps resumable.

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("parrot-run", &opts, &Experiment::all()));
}

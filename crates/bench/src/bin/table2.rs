//! Regenerates Table 2: the simulated microarchitectural configuration.

use npu::NpuParams;
use uarch::CoreConfig;

fn main() {
    let core = CoreConfig::penryn_like();
    let npu = NpuParams::default();
    println!("Table 2: microarchitectural parameters\n");
    println!("Core");
    println!("  Architecture             trace-driven OoO (x86-64-like IR)");
    println!(
        "  Fetch/Issue Width        {}/{}",
        core.fetch_width, core.issue_width
    );
    println!(
        "  INT ALUs/FPUs            {}/{}",
        core.int_alus, core.fp_units
    );
    println!(
        "  Load/Store FUs           {}/{}",
        core.load_units, core.store_units
    );
    println!("  ROB Entries              {}", core.rob_entries);
    println!("  Issue Queue Entries      {}", core.iq_entries);
    println!(
        "  Load/Store Queue Entries {}/{}",
        core.lq_entries, core.sq_entries
    );
    println!(
        "  Branch Predictor         gshare {} bits + {}-entry BTB + {}-entry RAS",
        core.gshare_bits, core.btb_entries, core.ras_entries
    );
    println!("  Frequency                {} GHz", core.frequency_ghz);
    println!("\nCaches and Memory");
    println!(
        "  L1 Cache Size            {} KB data",
        core.l1d.size_bytes / 1024
    );
    println!(
        "  L1 Line/Assoc/Latency    {} B / {}-way / {} cycles",
        core.l1d.line_bytes, core.l1d.ways, core.l1d.hit_latency
    );
    println!(
        "  L2 Cache Size            {} MB",
        core.l2.size_bytes / 1024 / 1024
    );
    println!(
        "  L2 Line/Assoc/Latency    {} B / {}-way / {} cycles",
        core.l2.line_bytes, core.l2.ways, core.l2.hit_latency
    );
    println!("  Memory Latency           {} cycles", core.mem_latency);
    println!("\nNPU");
    println!("  Number of PEs            {}", npu.n_pes);
    println!("  Bus Schedule FIFO        {} entries", npu.bus_schedule);
    println!("  Input FIFO               {} entries", npu.input_fifo);
    println!("  Output FIFO              {} entries", npu.output_fifo);
    println!("  Config FIFO              {} entries", npu.config_fifo);
    println!("\nNPU PE");
    println!("  Weight Cache             {} entries", npu.weight_cache);
    println!("  Input FIFO               {} entries", npu.pe_input_fifo);
    println!("  Output Register File     {} entries", npu.output_regs);
    println!("  Sigmoid Unit LUT         {} entries", npu.sigmoid_lut);
    println!(
        "  CPU<->NPU link latency   {} cycle(s) each way",
        core.npu_link_latency
    );
}

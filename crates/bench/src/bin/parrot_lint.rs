//! `parrot-lint` — runs the region safety verifier and the static
//! precision analysis over every benchmark's candidate region.
//!
//! Usage: `parrot-lint [--deny-warnings] [--format table|json] [benchmark…]`
//!
//! With no benchmark names, all six Table 1 regions are linted. The
//! default `table` format prints a diagnostics table plus a per-region
//! precision summary; `json` emits one machine-readable document (the
//! CI `lint-regions` gate parses it with `jq`). The process exits
//! non-zero if any error-severity finding exists (or any warning, under
//! `--deny-warnings`), so CI can gate on region safety.

use bench::format::render_table;
use benchmarks::{all_benchmarks, benchmark_by_name, Benchmark};
use serde::Serialize;
use telemetry::{LintSummary, PrecisionSummary};

/// One diagnostic, flattened for the JSON document.
#[derive(Serialize)]
struct DiagnosticRow {
    severity: String,
    lint: String,
    function: String,
    inst: Option<u64>,
    message: String,
}

/// Everything `parrot-lint` knows about one region.
#[derive(Serialize)]
struct RegionDoc {
    name: String,
    lint: LintSummary,
    precision: PrecisionSummary,
    diagnostics: Vec<DiagnosticRow>,
}

/// The top-level JSON document.
#[derive(Serialize)]
struct LintDoc {
    regions: Vec<RegionDoc>,
    totals: LintSummary,
}

fn main() {
    let mut deny_warnings = false;
    let mut json = false;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("table") => json = false,
                other => {
                    eprintln!("parrot-lint: --format expects 'table' or 'json', got {other:?}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: parrot-lint [--deny-warnings] [--format table|json] [benchmark…]");
                return;
            }
            other => names.push(other.to_string()),
        }
    }

    let benches: Vec<Box<dyn Benchmark>> = if names.is_empty() {
        all_benchmarks()
    } else {
        names
            .iter()
            .map(|n| {
                benchmark_by_name(n).unwrap_or_else(|| {
                    eprintln!("parrot-lint: unknown benchmark '{n}'");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut doc = LintDoc {
        regions: Vec::new(),
        totals: LintSummary::default(),
    };
    for bench in &benches {
        let region = bench.region();
        let report = region.lint();
        let mut lint = LintSummary::default();
        let mut diagnostics = Vec::new();
        for d in report.diagnostics() {
            lint.record(&d.severity.to_string(), d.lint.name());
            doc.totals.record(&d.severity.to_string(), d.lint.name());
            diagnostics.push(DiagnosticRow {
                severity: d.severity.to_string(),
                lint: d.lint.to_string(),
                function: d.function.clone(),
                inst: d.inst.map(|i| i as u64),
                message: d.message.clone(),
            });
        }
        doc.regions.push(RegionDoc {
            name: bench.name().to_string(),
            lint,
            precision: region.precision_summary(),
            diagnostics,
        });
    }

    if json {
        println!("{}", serde::json::to_string_pretty(&doc));
    } else {
        print_tables(&doc, benches.len());
    }

    if doc.totals.errors > 0 || (deny_warnings && doc.totals.warnings > 0) {
        std::process::exit(1);
    }
}

fn print_tables(doc: &LintDoc, n_benches: usize) {
    let rows: Vec<Vec<String>> = doc
        .regions
        .iter()
        .flat_map(|r| {
            r.diagnostics.iter().map(|d| {
                vec![
                    d.severity.clone(),
                    r.name.clone(),
                    d.lint.clone(),
                    d.function.clone(),
                    d.inst.map_or_else(|| "-".to_string(), |i| i.to_string()),
                    d.message.clone(),
                ]
            })
        })
        .collect();

    if rows.is_empty() {
        println!("parrot-lint: {n_benches} region(s) linted, no findings");
    } else {
        println!(
            "{}",
            render_table(
                &[
                    "severity",
                    "benchmark",
                    "lint",
                    "function",
                    "inst",
                    "message"
                ],
                &rows,
            )
        );
        println!(
            "parrot-lint: {} region(s) linted: {} error(s), {} warning(s), {} info(s), {} note(s)",
            n_benches, doc.totals.errors, doc.totals.warnings, doc.totals.infos, doc.totals.notes,
        );
    }

    // Static fixed-point precision per region (the NPU datapath sizing
    // question): what Qm.n each region needs, when the analysis can
    // bound it.
    let bits = |b: Option<u8>| b.map_or_else(|| "-".to_string(), |b| b.to_string());
    let num = |x: f32| {
        if x == 0.0 || (1e-3..1e6).contains(&x.abs()) {
            format!("{x}")
        } else {
            format!("{x:e}")
        }
    };
    let range = |r: &telemetry::PrecisionRow| match (r.lo, r.hi) {
        (Some(lo), Some(hi)) => format!("[{}, {}]", num(lo), num(hi)),
        _ => "unbounded".to_string(),
    };
    let precision_rows: Vec<Vec<String>> = doc
        .regions
        .iter()
        .map(|r| {
            let p = &r.precision;
            let hull = p.values.iter().find(|v| v.name == "intermediates");
            vec![
                r.name.clone(),
                if p.bounded { "yes" } else { "no" }.to_string(),
                bits(p.datapath_int_bits),
                bits(p.datapath_frac_bits),
                hull.map_or_else(|| "-".to_string(), range),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "bounded",
                "int_bits",
                "frac_bits",
                "intermediates"
            ],
            &precision_rows,
        )
    );
}

//! `parrot-lint` — runs the region safety verifier over every benchmark's
//! candidate region and prints a diagnostics table.
//!
//! Usage: `parrot-lint [--deny-warnings] [benchmark…]`
//!
//! With no benchmark names, all six Table 1 regions are linted. The
//! process exits non-zero if any error-severity finding exists (or any
//! warning, under `--deny-warnings`), so CI can gate on region safety.

use bench::format::render_table;
use benchmarks::{all_benchmarks, benchmark_by_name, Benchmark};

fn main() {
    let mut deny_warnings = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("usage: parrot-lint [--deny-warnings] [benchmark…]");
                return;
            }
            other => names.push(other.to_string()),
        }
    }

    let benches: Vec<Box<dyn Benchmark>> = if names.is_empty() {
        all_benchmarks()
    } else {
        names
            .iter()
            .map(|n| {
                benchmark_by_name(n).unwrap_or_else(|| {
                    eprintln!("parrot-lint: unknown benchmark '{n}'");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut totals = telemetry::LintSummary::default();
    for bench in &benches {
        let region = bench.region();
        let report = region.lint();
        for d in report.diagnostics() {
            totals.record(&d.severity.to_string(), d.lint.name());
            rows.push(vec![
                d.severity.to_string(),
                bench.name().to_string(),
                d.lint.to_string(),
                d.function.clone(),
                d.inst.map_or_else(|| "-".to_string(), |i| i.to_string()),
                d.message.clone(),
            ]);
        }
    }

    if rows.is_empty() {
        println!(
            "parrot-lint: {} region(s) linted, no findings",
            benches.len()
        );
    } else {
        println!(
            "{}",
            render_table(
                &[
                    "severity",
                    "benchmark",
                    "lint",
                    "function",
                    "inst",
                    "message"
                ],
                &rows,
            )
        );
        println!(
            "parrot-lint: {} region(s) linted: {} error(s), {} warning(s), {} info(s)",
            benches.len(),
            totals.errors,
            totals.warnings,
            totals.infos,
        );
    }

    if totals.errors > 0 || (deny_warnings && totals.warnings > 0) {
        std::process::exit(1);
    }
}

//! Ablation: NPU defect tolerance.
//!
//! The paper's related work (Temam, ISCA'12) argues hardware neural
//! networks degrade gracefully under permanent/transient defects — one of
//! the reasons NPUs are attractive as technology scales ("as transistors
//! become less reliable"). This ablation injects bit-flip faults into the
//! NPU's weight reads at increasing rates and reports each benchmark's
//! region-level output degradation.

use bench::format::render_table;
use bench::{drive, Options};
use benchmarks::benchmark_by_name;
use harness::{run_sweep, Experiment};
use npu::NpuParams;

const FAULT_RATES: [f64; 5] = [0.0, 1e-5, 1e-4, 1e-3, 1e-2];

fn main() {
    let opts = Options::from_args();
    let mut spec = drive::spec("ablation_faults", &opts);
    spec.experiments = vec![Experiment::Train];
    let result = run_sweep(&spec).expect("sweep spec is valid");
    if !result.ok() {
        eprint!("{}", result.failure_summary());
        std::process::exit(1);
    }

    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(FAULT_RATES.iter().map(|r| format!("{r:.0e}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for name in &result.benches {
        let bench = benchmark_by_name(name).expect("known benchmark");
        let compiled = result.compiled(name).expect("train artifact");
        let region = bench.region();
        // Probe inputs: a deterministic slice of the training distribution.
        let inputs: Vec<Vec<f32>> = bench
            .training_inputs(&spec.scale)
            .into_iter()
            .step_by(7)
            .take(300)
            .collect();
        let mut row = vec![name.clone()];
        for &rate in &FAULT_RATES {
            let params = NpuParams::default().with_fault_rate(rate);
            let mut sim = compiled
                .make_npu_with(&params)
                .expect("default sizing fits");
            let mut total = 0.0f64;
            let mut count = 0usize;
            for input in &inputs {
                let precise = region.evaluate(input).expect("region runs");
                let approx = sim.evaluate_invocation(input).expect("npu runs");
                for (&p, &a) in precise.iter().zip(&approx) {
                    total += ((a - p).abs() / p.abs().max(0.05)) as f64;
                    count += 1;
                }
            }
            row.push(format!("{:.1}%", 100.0 * total / count as f64));
        }
        rows.push(row);
    }
    println!("\nAblation: region-level relative error vs weight-read fault rate");
    println!("{}", render_table(&header_refs, &rows));
    println!("Error stays near the fault-free level until roughly one weight");
    println!("read in a thousand is corrupted — graceful degradation.");
}

//! Regenerates Figure 6: CDF of the applications' per-element output
//! error. "A point (x, y) indicates that y fraction of the output
//! elements see error less than or equal to x."

use bench::{format::render_table, Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let rows = lab.fig6();
    let mut header: Vec<String> = vec!["benchmark".into()];
    if let Some(first) = rows.first() {
        for (x, _) in &first.points {
            header.push(format!("<={:.0}%", 100.0 * x));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.points.iter().map(|(_, y)| format!("{:.1}%", 100.0 * y)));
            row
        })
        .collect();
    println!("\nFigure 6: cumulative distribution of output-element error");
    println!("{}", render_table(&header_refs, &table));
}

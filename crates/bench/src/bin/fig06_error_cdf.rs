//! Regenerates Figure 6: CDF of the applications' per-element output
//! error. "A point (x, y) indicates that y fraction of the output
//! elements see error less than or equal to x."

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("fig06_error_cdf", &opts, &[Experiment::Fig6]));
}

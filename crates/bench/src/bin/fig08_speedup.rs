//! Regenerates Figure 8a: whole-application speedup with an 8-PE NPU and
//! with a hypothetical zero-cycle ("ideal") NPU. (The Fig8 experiment
//! prints both the speedup and energy tables; this binary and
//! `fig08_energy` share it.)

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("fig08_speedup", &opts, &[Experiment::Fig8]));
}

//! Regenerates Figure 8a: whole-application speedup with an 8-PE NPU and
//! with a hypothetical zero-cycle ("ideal") NPU.

use bench::format::{geomean, render_table};
use bench::{Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let rows = lab.fig8();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.baseline_cycles.to_string(),
                r.npu_cycles.to_string(),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.ideal_speedup),
            ]
        })
        .collect();
    if rows.len() > 1 {
        let s: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        let i: Vec<f64> = rows.iter().map(|r| r.ideal_speedup).collect();
        table.push(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            format!("{:.2}x", geomean(&s)),
            format!("{:.2}x", geomean(&i)),
        ]);
    }
    println!("\nFigure 8a: total application speedup with 8-PE NPU");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "baseline cycles",
                "npu cycles",
                "Core+NPU",
                "Core+Ideal NPU"
            ],
            &table
        )
    );
}

//! Error-vs-bitwidth sweep of the fixed-point NPU inference path.
//!
//! For each benchmark: observe the target region, train its paper
//! topology, then run the int4→int16 quantized datapath
//! ([`npu::QuantizedNpu`]) against the f32 oracle ([`npu::NpuConfig`]'s
//! reference evaluation) over held-out invocations. Per width, the
//! output-range-normalized absolute errors form a CDF whose quantiles —
//! plus saturation rates and the Qm.n formats chosen from the static
//! precision analysis — land in a JSON results file.
//!
//! Usage: `quant-bitwidth [--fast] [--out PATH]` (default output
//! `results/quant_bitwidth_cdf.json`).

use ann::{Dataset, Mlp, QuantScratch, Topology, TrainParams, Trainer};
use benchmarks::{all_benchmarks, Scale};
use npu::{FormatSource, NpuConfig, QuantizedNpu};
use parrot::observe;
use parrot::quality::ErrorCdf;
use serde::Serialize;

/// Weight/activation storage widths to sweep.
const WIDTHS: [u8; 7] = [4, 6, 8, 10, 12, 14, 16];
/// Cap on training samples (tune.rs's middle setting).
const TRAIN_CAP: usize = 2000;
/// Cap on evaluated invocations per width.
const EVAL_CAP: usize = 2000;

#[derive(Serialize)]
struct WidthRow {
    weight_bits: u8,
    /// Accumulator format as "Qm.n" — m integer bits (sign included,
    /// matching the precision analysis's convention), n fractional.
    datapath_format: String,
    /// Where the boundary formats came from: proven interval hulls
    /// ("static") or observed normalizer ranges ("observed").
    format_source: String,
    /// Output-span-normalized absolute error quantiles vs the f32 oracle.
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
    mean: f64,
    /// Fraction of invocations with >= 1 saturated boundary quantization.
    boundary_saturation_rate: f64,
    /// Fraction of invocations with >= 1 saturated datapath accumulation.
    datapath_saturation_rate: f64,
}

#[derive(Serialize)]
struct BenchRows {
    benchmark: String,
    topology: String,
    invocations: usize,
    /// Held-out training quality, for context.
    test_mse: f64,
    widths: Vec<WidthRow>,
}

#[derive(Serialize)]
struct Output {
    schema: &'static str,
    note: &'static str,
    scale: &'static str,
    benchmarks: Vec<BenchRows>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/quant_bitwidth_cdf.json")
        .to_string();
    let scale = if fast { Scale::small() } else { Scale::paper() };

    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let name = bench.name().to_string();
        let region = bench.region();
        let precision = region.precision();
        eprintln!(
            "[quant-bitwidth] {name}: precision analysis {}",
            if precision.is_some() {
                "proven"
            } else {
                "unavailable"
            }
        );

        // Observe the region over its training inputs (raw values).
        let inputs = bench.training_inputs(&scale);
        let obs = observe(&region, &inputs).expect("observation must succeed");

        // Train the paper topology on normalized data, exactly like the
        // compiler (tune.rs's calibrated middle setting).
        let mut norm_data = Dataset::new(obs.data.n_inputs(), obs.data.n_outputs());
        for (i, o) in obs.data.iter() {
            let mut iv = i.to_vec();
            let mut ov = o.to_vec();
            obs.input_norm.normalize(&mut iv);
            obs.output_norm.normalize(&mut ov);
            norm_data.push(&iv, &ov).unwrap();
        }
        let capped = norm_data.subsample(TRAIN_CAP, 7);
        let (train, test) = capped.split(0.7, 3);
        let topology = Topology::new(bench.paper_topology()).unwrap();
        let mut mlp = Mlp::seeded(topology.clone(), 42);
        let report = Trainer::new(TrainParams {
            epochs: if fast { 60 } else { 300 },
            learning_rate: 0.05,
            momentum: 0.9,
            ..TrainParams::default()
        })
        .train(&mut mlp, &train);
        let test_mse = ann::mse(&mlp, &test);
        eprintln!(
            "[quant-bitwidth] {name}: trained {topology}, train mse {:.6}, test mse {test_mse:.6}",
            report.final_mse
        );

        let config = NpuConfig::new(mlp, obs.input_norm.clone(), obs.output_norm.clone());

        // Held-out raw invocations: every observed input, capped.
        let eval_inputs: Vec<Vec<f32>> = obs
            .data
            .iter()
            .take(EVAL_CAP)
            .map(|(i, _)| i.to_vec())
            .collect();

        // Output span for normalizing errors across benchmarks.
        let spans: Vec<f32> = obs
            .output_norm
            .ranges()
            .iter()
            .map(|&(lo, hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();

        let mut widths = Vec::new();
        for &bits in &WIDTHS {
            let quant = QuantizedNpu::new(&config, precision.as_ref(), bits);
            let mut scratch = QuantScratch::new();
            let mut errors = Vec::new();
            let mut boundary_sat = 0usize;
            let mut datapath_sat = 0usize;
            for raw in &eval_inputs {
                let oracle = config.evaluate(raw);
                let inv = quant.evaluate_with(raw, &mut scratch);
                for ((q, f), span) in inv.outputs.iter().zip(&oracle).zip(&spans) {
                    errors.push(((q - f).abs() / span) as f64);
                }
                if inv.boundary_saturated > 0 {
                    boundary_sat += 1;
                }
                if inv.datapath.saturated > 0 {
                    datapath_sat += 1;
                }
            }
            let n = eval_inputs.len().max(1) as f64;
            let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
            let cdf = ErrorCdf::from_errors(errors);
            let dp = quant.datapath();
            widths.push(WidthRow {
                weight_bits: bits,
                datapath_format: format!("Q{}.{}", dp.int_bits(), dp.frac_bits()),
                format_source: match quant.source() {
                    FormatSource::Static => "static".into(),
                    FormatSource::Observed => "observed".into(),
                },
                p50: cdf.quantile(0.5),
                p90: cdf.quantile(0.9),
                p99: cdf.quantile(0.99),
                max: cdf.quantile(1.0),
                mean,
                boundary_saturation_rate: boundary_sat as f64 / n,
                datapath_saturation_rate: datapath_sat as f64 / n,
            });
            let last = widths.last().unwrap();
            eprintln!(
                "[quant-bitwidth] {name}: int{bits:<2} {} ({}) p50 {:.2e} p99 {:.2e} max {:.2e}",
                last.datapath_format, last.format_source, last.p50, last.p99, last.max
            );
        }
        rows.push(BenchRows {
            benchmark: name,
            topology: topology.to_string(),
            invocations: eval_inputs.len(),
            test_mse,
            widths,
        });
    }

    let output = Output {
        schema: "quant-bitwidth-cdf/v1",
        note: "Output-span-normalized |quantized - f32 oracle| error quantiles per \
               weight/activation storage width. The datapath accumulator format and \
               boundary I/O formats come from the static precision analysis where the \
               region's hull is proven (format_source=static), else from observed \
               normalizer ranges (format_source=observed).",
        scale: if fast { "small" } else { "paper" },
        benchmarks: rows,
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, serde::json::to_string_pretty(&output)).expect("write results");
    eprintln!("[quant-bitwidth] wrote {out_path}");
}

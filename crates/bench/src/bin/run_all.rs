//! Runs every experiment in one pass, sharing the expensive training and
//! baseline-timing work, and prints each table/figure in paper order.

use bench::format::{geomean, render_table};
use bench::{Lab, Options, Suite};

fn main() {
    let opts = Options::from_args();
    let t0 = std::time::Instant::now();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);

    // Table 1.
    let rows = lab.table1();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.calls.to_string(),
                r.loops.to_string(),
                r.ifs.to_string(),
                r.instructions.to_string(),
                r.topology.clone(),
                format!("{:.5}", r.nn_mse),
                r.error_metric.clone(),
                format!("{:.2}%", 100.0 * r.app_error),
            ]
        })
        .collect();
    println!("\n== Table 1: benchmark characterization and Parrot results ==");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "#calls",
                "#loops",
                "#ifs",
                "#insts",
                "topology",
                "NN MSE",
                "metric",
                "error"
            ],
            &table
        )
    );

    // Figure 6.
    let rows = lab.fig6();
    println!("== Figure 6: error CDF (fraction of elements with error <= x) ==");
    let levels = [
        "0%", "10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%", "90%", "100%",
    ];
    let mut header = vec!["benchmark"];
    header.extend(levels);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.points.iter().map(|(_, y)| format!("{:.1}%", 100.0 * y)));
            row
        })
        .collect();
    println!("{}", render_table(&header, &table));

    // Figure 7.
    let rows = lab.fig7();
    println!("== Figure 7: normalized dynamic instructions ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.3}", r.npu_other as f64 / r.baseline as f64),
                format!("{:.3}", r.npu_queue as f64 / r.baseline as f64),
                format!("{:.3}", r.normalized_total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["benchmark", "other", "queue", "total"], &table)
    );

    // Figure 8.
    let rows = lab.fig8();
    println!("== Figure 8a/8b: speedup and energy reduction ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.ideal_speedup),
                format!("{:.2}x", r.energy_reduction),
                format!("{:.2}x", r.ideal_energy_reduction),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "speedup",
                "ideal speedup",
                "energy red.",
                "ideal energy red."
            ],
            &table
        )
    );
    if rows.len() > 1 {
        let s: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        let e: Vec<f64> = rows.iter().map(|r| r.energy_reduction).collect();
        println!(
            "geomean speedup {:.2}x, geomean energy reduction {:.2}x\n",
            geomean(&s),
            geomean(&e)
        );
    }

    // Figure 9.
    let rows = lab.fig9();
    println!("== Figure 9: software NN slowdown ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.clone(), format!("{:.2}x", r.slowdown)])
        .collect();
    println!("{}", render_table(&["benchmark", "slowdown"], &table));

    // Figure 10.
    let rows = lab.fig10(&[1, 2, 4, 8, 16]);
    println!("== Figure 10: speedup vs link latency ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.speedups.iter().map(|(_, s)| format!("{s:.2}x")));
            row
        })
        .collect();
    println!(
        "{}",
        render_table(&["benchmark", "1", "2", "4", "8", "16"], &table)
    );

    // Figure 11.
    let result = lab.fig11(&[1, 2, 4, 8, 16, 32]);
    println!("== Figure 11: geomean speedup per PE count ==");
    for (pes, s) in &result.geomean {
        println!("  {pes:>2} PEs: {s:.2}x");
    }
    println!("Gain per doubling:");
    for (label, gain) in &result.doubling_gains {
        println!("  {label:<12} {:+.1}%", 100.0 * gain);
    }

    // Machine-readable run reports (one JSON file per benchmark).
    if let Some(dir) = &opts.json_out {
        let wall_clock_us = t0.elapsed().as_micros() as u64;
        for mut report in lab.run_reports("run_all", opts.mode()) {
            report.wall_clock_us = wall_clock_us;
            match report.write_into(dir) {
                Ok(path) => eprintln!("[run_all] wrote {}", path.display()),
                Err(e) => eprintln!("[run_all] failed to write report: {e}"),
            }
        }
    }

    eprintln!("\n[run_all] completed in {:.1?}", t0.elapsed());
}

//! Runs every experiment in one pass, sharing the expensive training and
//! baseline-timing work across a parallel job DAG, and prints each
//! table/figure in paper order. Exits non-zero with a per-benchmark
//! failure summary if any job failed (the surviving benchmarks still
//! print).

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("run_all", &opts, &Experiment::all()));
}

//! Ablation: sigmoid LUT precision vs. output quality.
//!
//! The paper's design space (Figure 4) includes *approximate digital*
//! NPUs that trade result precision for energy. The cheapest such knob in
//! the digital design is the sigmoid LUT size (Table 2: 2048 entries).
//! This ablation sweeps the LUT size and reports each benchmark's
//! whole-application error, showing how much precision the sigmoid unit
//! actually needs.

use ann::SigmoidLut;
use bench::format::render_table;
use bench::{drive, Options};
use benchmarks::runner::{baseline_outputs, run_functional};
use benchmarks::{benchmark_by_name, AppVariant, Benchmark};
use harness::{run_sweep, Experiment};
use parrot::CompiledRegion;

const LUT_SIZES: [usize; 5] = [16, 64, 256, 1024, 2048];

fn main() {
    let opts = Options::from_args();
    let mut spec = drive::spec("ablation_lut", &opts);
    spec.experiments = vec![Experiment::Train];
    let result = run_sweep(&spec).expect("sweep spec is valid");
    if !result.ok() {
        eprint!("{}", result.failure_summary());
        std::process::exit(1);
    }

    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(LUT_SIZES.iter().map(|n| format!("{n}-entry")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for name in &result.benches {
        let bench = benchmark_by_name(name).expect("known benchmark");
        let compiled = result.compiled(name).expect("train artifact");
        let scale = spec.scale;
        let reference = baseline_outputs(bench.as_ref(), &scale);
        let mut row = vec![name.clone()];
        for &size in &LUT_SIZES {
            // Evaluate the application functionally with a degraded LUT:
            // recompute the region's outputs per invocation through the
            // compiled config (the app path uses the same arithmetic).
            let lut = SigmoidLut::new(size, 8.0);
            let variant = AppVariant::Npu(&compiled);
            let app = bench.build_app(&variant, &scale);
            // Swap in the degraded LUT by wrapping evaluation: the sim's
            // LUT is fixed, so compare via the functional reference path.
            let approx = evaluate_app_with_lut(&app, bench.as_ref(), &compiled, &scale, &lut)
                .unwrap_or_else(|| {
                    let out = run_functional(&app, &variant).expect("app runs");
                    bench.extract_outputs(&out.memory, &scale)
                });
            let error = bench.app_error(&reference, &approx);
            row.push(format!("{:.2}%", 100.0 * error));
        }
        rows.push(row);
    }
    println!("\nAblation: whole-application error vs sigmoid LUT precision");
    println!("{}", render_table(&header_refs, &rows));
    println!("The hardware's 2048-entry LUT is effectively exact; quality only");
    println!("degrades once the table drops below a few hundred entries.");
}

/// Functional app evaluation with an explicit LUT: only meaningful for
/// benchmarks whose app output is a pure per-invocation map (handled by
/// re-running the generic app with an NPU runtime that uses `lut`).
fn evaluate_app_with_lut(
    app: &benchmarks::App,
    bench: &dyn Benchmark,
    compiled: &CompiledRegion,
    scale: &benchmarks::Scale,
    lut: &SigmoidLut,
) -> Option<Vec<f32>> {
    use approx_ir::{Interpreter, NpuPort, NullSink};

    struct LutPort<'a> {
        config: &'a npu::NpuConfig,
        lut: &'a SigmoidLut,
        inputs: Vec<f32>,
        outputs: std::collections::VecDeque<f32>,
    }
    impl NpuPort for LutPort<'_> {
        fn enq_config(&mut self, _w: u32) {}
        fn deq_config(&mut self) -> u32 {
            0
        }
        fn enq_data(&mut self, v: f32) {
            self.inputs.push(v);
            if self.inputs.len() == self.config.topology().inputs() {
                let out = self.config.evaluate_with_lut(&self.inputs, self.lut);
                self.outputs.extend(out);
                self.inputs.clear();
            }
        }
        fn deq_data(&mut self) -> f32 {
            self.outputs.pop_front().expect("output available")
        }
    }

    let mut port = LutPort {
        config: compiled.config(),
        lut,
        inputs: Vec::new(),
        outputs: std::collections::VecDeque::new(),
    };
    let mut interp = Interpreter::new(&app.program);
    *interp.memory_mut() = app.memory.clone();
    let mut sink = NullSink;
    interp
        .run_full(app.entry, &app.args, &mut sink, Some(&mut port))
        .ok()?;
    Some(bench.extract_outputs(interp.memory(), scale))
}

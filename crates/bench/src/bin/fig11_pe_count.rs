//! Regenerates Figure 11: geometric-mean speedup gain from doubling the
//! number of NPU processing engines (1 → 32).

use bench::format::render_table;
use bench::{Lab, Options, Suite};

const PE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let opts = Options::from_args();
    let suite = Suite::compile(opts.scale(), opts.fast, opts.only.as_deref());
    let mut lab = Lab::new(suite);
    let result = lab.fig11(&PE_COUNTS);

    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(PE_COUNTS.iter().map(|p| format!("{p} PEs")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table: Vec<Vec<String>> = result
        .per_bench
        .iter()
        .map(|(name, series)| {
            let mut row = vec![name.clone()];
            row.extend(series.iter().map(|(_, s)| format!("{s:.2}x")));
            row
        })
        .collect();
    let mut geo = vec!["geomean".to_string()];
    geo.extend(result.geomean.iter().map(|(_, s)| format!("{s:.2}x")));
    table.push(geo);
    println!("\nFigure 11: speedup at each PE count");
    println!("{}", render_table(&header_refs, &table));

    println!("Geometric-mean speedup gain per doubling:");
    for (label, gain) in &result.doubling_gains {
        println!("  {label:<12} {:+.1}%", 100.0 * gain);
    }
}

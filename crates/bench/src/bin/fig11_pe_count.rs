//! Regenerates Figure 11: geometric-mean speedup gain from doubling the
//! number of NPU processing engines (1 → 32).

use bench::{drive, Options};
use harness::Experiment;

fn main() {
    let opts = Options::from_args();
    std::process::exit(drive::run("fig11_pe_count", &opts, &[Experiment::Fig11]));
}

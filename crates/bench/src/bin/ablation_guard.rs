//! Ablation: the Section 8 input-range guard under distribution shift.
//!
//! The paper proposes invoking the original code "whether an input falls
//! in the range of inputs seen previously during training" as a
//! worst-case-quality mitigation. This ablation injects a controlled
//! fraction of out-of-distribution invocations into `inversek2j` and
//! reports, with and without the guard: mean relative error, worst-case
//! error, and the fallback rate the guard pays.

use bench::format::render_table;
use bench::{drive, Options};
use benchmarks::inversek2j::{forward_kinematics, inversek2j_reference};
use harness::{run_sweep, Experiment};
use parrot::GuardedRegion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OUTLIER_FRACTIONS: [f64; 4] = [0.0, 0.05, 0.2, 0.5];

fn main() {
    let mut opts = Options::from_args();
    opts.only = Some("inversek2j".into());
    let mut spec = drive::spec("ablation_guard", &opts);
    spec.experiments = vec![Experiment::Train];
    let result = run_sweep(&spec).expect("sweep spec is valid");
    if !result.ok() {
        eprint!("{}", result.failure_summary());
        std::process::exit(1);
    }
    let compiled = result.compiled("inversek2j").expect("train artifact");
    let bench = benchmarks::benchmark_by_name("inversek2j").expect("known benchmark");
    let region = bench.region();

    let mut rng = StdRng::seed_from_u64(0x6A12);
    let mut rows = Vec::new();
    for &fraction in &OUTLIER_FRACTIONS {
        let mut guarded = GuardedRegion::new(&region, &compiled, 0.05);
        let (mut sum_g, mut sum_u) = (0.0f64, 0.0f64);
        let (mut worst_g, mut worst_u) = (0.0f64, 0.0f64);
        let n = 2_000;
        for _ in 0..n {
            // In-distribution targets come from the training joint ranges;
            // outliers use extreme joint angles the observation never saw.
            let (x, y) = if rng.gen_bool(fraction) {
                let th1 = rng.gen_range(2.0..3.0f32);
                let th2 = rng.gen_range(2.0..3.0f32);
                forward_kinematics(th1, th2)
            } else {
                let th1 = rng.gen_range(0.1..std::f32::consts::FRAC_PI_2);
                let th2 = rng.gen_range(0.1..std::f32::consts::FRAC_PI_2);
                forward_kinematics(th1, th2)
            };
            let (t1, t2) = inversek2j_reference(x, y);
            let g = guarded.evaluate(&[x, y]).expect("region runs");
            let u = compiled.evaluate(&[x, y]);
            let eg = rel_err(&[t1, t2], &g);
            let eu = rel_err(&[t1, t2], &u);
            sum_g += eg;
            sum_u += eu;
            worst_g = worst_g.max(eg);
            worst_u = worst_u.max(eu);
        }
        rows.push(vec![
            format!("{:.0}%", 100.0 * fraction),
            format!("{:.2}%", 100.0 * sum_u / n as f64),
            format!("{:.2}%", 100.0 * sum_g / n as f64),
            format!("{:.0}%", 100.0 * worst_u),
            format!("{:.0}%", 100.0 * worst_g),
            format!("{:.1}%", 100.0 * guarded.stats().fallback_rate()),
        ]);
    }
    println!("\nAblation: Section 8 input-range guard on inversek2j");
    println!(
        "{}",
        render_table(
            &[
                "outliers",
                "mean err (npu)",
                "mean err (guarded)",
                "worst (npu)",
                "worst (guarded)",
                "fallback rate"
            ],
            &rows
        )
    );
    println!("The guard holds mean error at the in-distribution level as the");
    println!("outlier fraction grows, paying precise re-execution for exactly");
    println!("the outlier fraction of invocations.");
}

fn rel_err(reference: &[f32], approx: &[f32]) -> f64 {
    reference
        .iter()
        .zip(approx)
        .map(|(&r, &a)| ((a - r).abs() / r.abs().max(0.05)) as f64)
        .sum::<f64>()
        / reference.len() as f64
}

//! The experiments themselves: row builders turning a harness
//! [`SweepResult`]'s artifacts into the paper's tables and figures.
//!
//! Every builder is a pure function of already-computed artifacts — the
//! expensive work (training, simulation) happened inside the sweep, in
//! parallel and behind the content-addressed cache. A benchmark whose
//! required artifacts are missing (an upstream job failed) is simply
//! omitted from the rows; the driver reports the failure separately.

use crate::format::geomean;
use benchmarks::{benchmark_by_name, Scale};
use harness::{CountsArtifact, EnergyArtifact, SweepResult, TimingArtifact, TrainArtifact};
use parrot::quality::ErrorCdf;

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Application domain.
    pub domain: String,
    /// Static function calls in the region.
    pub calls: usize,
    /// Static loops in the region.
    pub loops: usize,
    /// Static if/else constructs in the region.
    pub ifs: usize,
    /// Static region instructions.
    pub instructions: usize,
    /// Training samples observed.
    pub training_samples: usize,
    /// The topology the search selected.
    pub topology: String,
    /// Test-split MSE of the selected network.
    pub nn_mse: f64,
    /// Error metric name.
    pub error_metric: String,
    /// Whole-application error.
    pub app_error: f64,
}

/// One Figure 6 series: the error CDF sampled at fixed levels.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: String,
    /// `(error level, fraction of elements at or below it)`.
    pub points: Vec<(f64, f64)>,
}

/// One Figure 7 row: dynamic instruction counts.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline dynamic instructions.
    pub baseline: u64,
    /// Transformed-application non-queue instructions.
    pub npu_other: u64,
    /// Transformed-application NPU queue instructions.
    pub npu_queue: u64,
}

impl Fig7Row {
    /// Total transformed instructions normalized to baseline.
    pub fn normalized_total(&self) -> f64 {
        (self.npu_other + self.npu_queue) as f64 / self.baseline as f64
    }
}

/// One Figure 8 row: speedup and energy reduction.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// Core+NPU cycles.
    pub npu_cycles: u64,
    /// Core+Ideal-NPU cycles.
    pub ideal_cycles: u64,
    /// Whole-application speedup with the 8-PE NPU.
    pub speedup: f64,
    /// Speedup bound with a zero-cycle NPU.
    pub ideal_speedup: f64,
    /// Whole-application energy reduction with the 8-PE NPU.
    pub energy_reduction: f64,
    /// Energy-reduction bound with a zero-energy NPU.
    pub ideal_energy_reduction: f64,
}

/// One Figure 9 row: all-software NN execution.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// Slowdown vs. the untransformed baseline (>1 means slower).
    pub slowdown: f64,
}

/// One Figure 10 row: link-latency sensitivity.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: String,
    /// `(one-way link latency in cycles, whole-app speedup)`.
    pub speedups: Vec<(u64, f64)>,
}

/// Figure 11: PE-count sensitivity.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Per-benchmark speedups at each PE count.
    pub per_bench: Vec<(String, Vec<(usize, f64)>)>,
    /// Geometric-mean speedup at each PE count.
    pub geomean: Vec<(usize, f64)>,
    /// Geometric-mean gain from each doubling (the paper's bars).
    pub doubling_gains: Vec<(String, f64)>,
}

// ---------------------------------------------------------------------
// Artifact accessors
// ---------------------------------------------------------------------

fn outputs<'a>(result: &'a SweepResult, bench: &str, stage: &str) -> Option<&'a [f32]> {
    result.artifact(bench, stage)?.as_outputs().ok()
}

fn counts<'a>(result: &'a SweepResult, bench: &str, stage: &str) -> Option<&'a CountsArtifact> {
    result.artifact(bench, stage)?.as_counts().ok()
}

fn timing<'a>(result: &'a SweepResult, bench: &str, stage: &str) -> Option<&'a TimingArtifact> {
    result.artifact(bench, stage)?.as_timing().ok()
}

fn train<'a>(result: &'a SweepResult, bench: &str) -> Option<&'a TrainArtifact> {
    result.artifact(bench, "train")?.as_train().ok()
}

fn energy<'a>(result: &'a SweepResult, bench: &str) -> Option<&'a EnergyArtifact> {
    result.artifact(bench, "energy")?.as_energy().ok()
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Table 1: per-benchmark characterization, selected topology, NN MSE,
/// and whole-application error.
pub fn table1_rows(result: &SweepResult, scale: &Scale) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for name in &result.benches {
        let Some(bench) = benchmark_by_name(name) else {
            continue;
        };
        let (Some(reference), Some(approx), Some(trained)) = (
            outputs(result, name, "outputs_base"),
            outputs(result, name, "outputs_npu"),
            train(result, name),
        ) else {
            continue;
        };
        let static_counts = bench.region().static_counts();
        rows.push(Table1Row {
            name: name.clone(),
            domain: bench.domain().into(),
            calls: static_counts.function_calls,
            loops: static_counts.loops,
            ifs: static_counts.ifs,
            instructions: static_counts.instructions,
            training_samples: bench.training_inputs(scale).len(),
            topology: trained.outcome.mlp.topology().to_string(),
            nn_mse: trained.outcome.best.test_mse,
            error_metric: bench.error_metric().into(),
            app_error: bench.app_error(reference, approx),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// Figure 6: CDF of per-element application output error, sampled at
/// 0 %, 10 %, …, 100 % error levels.
pub fn fig6_rows(result: &SweepResult) -> Vec<Fig6Row> {
    let levels: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
    let mut rows = Vec::new();
    for name in &result.benches {
        let Some(bench) = benchmark_by_name(name) else {
            continue;
        };
        let (Some(reference), Some(approx)) = (
            outputs(result, name, "outputs_base"),
            outputs(result, name, "outputs_npu"),
        ) else {
            continue;
        };
        let errors = bench.element_errors(reference, approx);
        let cdf = ErrorCdf::from_errors(errors);
        rows.push(Fig6Row {
            name: name.clone(),
            points: cdf.sample(&levels),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Figure 7: dynamic instructions of the transformed application (split
/// into queue and other) normalized to the baseline.
pub fn fig7_rows(result: &SweepResult) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for name in &result.benches {
        let (Some(base), Some(npu)) = (
            counts(result, name, "counts_base"),
            counts(result, name, "counts_npu"),
        ) else {
            continue;
        };
        rows.push(Fig7Row {
            name: name.clone(),
            baseline: base.total,
            npu_other: npu.total - npu.npu_queue,
            npu_queue: npu.npu_queue,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// Figure 8: whole-application speedup (8a) and energy reduction (8b)
/// for the 8-PE NPU and the ideal zero-cost NPU.
pub fn fig8_rows(result: &SweepResult) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for name in &result.benches {
        let (Some(base), Some(npu), Some(ideal), Some(pj)) = (
            timing(result, name, "sim_cpu"),
            timing(result, name, "sim_npu"),
            timing(result, name, "sim_ideal"),
            energy(result, name),
        ) else {
            continue;
        };
        rows.push(Fig8Row {
            name: name.clone(),
            baseline_cycles: base.stats.cycles,
            npu_cycles: npu.stats.cycles,
            ideal_cycles: ideal.stats.cycles,
            speedup: base.stats.cycles as f64 / npu.stats.cycles as f64,
            ideal_speedup: base.stats.cycles as f64 / ideal.stats.cycles as f64,
            energy_reduction: pj.baseline_pj / pj.npu_pj,
            ideal_energy_reduction: pj.baseline_pj / pj.ideal_pj,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------

/// Figure 9: slowdown when the transformed program evaluates the network
/// in software on the core (no NPU).
pub fn fig9_rows(result: &SweepResult) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for name in &result.benches {
        let (Some(base), Some(soft)) = (
            timing(result, name, "sim_cpu"),
            timing(result, name, "sim_soft"),
        ) else {
            continue;
        };
        rows.push(Fig9Row {
            name: name.clone(),
            slowdown: soft.stats.cycles as f64 / base.stats.cycles as f64,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------

/// Figure 10: speedup as the one-way CPU↔NPU link latency grows.
pub fn fig10_rows(result: &SweepResult, latencies: &[u64]) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for name in &result.benches {
        let Some(base) = timing(result, name, "sim_cpu") else {
            continue;
        };
        let series: Vec<(u64, f64)> = latencies
            .iter()
            .filter_map(|&lat| {
                let t = timing(result, name, &format!("sim_link_{lat}"))?;
                Some((lat, base.stats.cycles as f64 / t.stats.cycles as f64))
            })
            .collect();
        if series.len() == latencies.len() {
            rows.push(Fig10Row {
                name: name.clone(),
                speedups: series,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------

/// Figure 11: speedup at each PE count and the geometric-mean gain per
/// doubling. Benchmarks missing any sweep point are left out so the
/// geomean stays comparable across PE counts.
pub fn fig11_result(result: &SweepResult, pe_counts: &[usize]) -> Fig11Result {
    let mut per_bench: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    for name in &result.benches {
        let Some(base) = timing(result, name, "sim_cpu") else {
            continue;
        };
        let series: Vec<(usize, f64)> = pe_counts
            .iter()
            .filter_map(|&pes| {
                let t = timing(result, name, &format!("sim_pes_{pes}"))?;
                Some((pes, base.stats.cycles as f64 / t.stats.cycles as f64))
            })
            .collect();
        if series.len() == pe_counts.len() {
            per_bench.push((name.clone(), series));
        }
    }
    let geomean_series: Vec<(usize, f64)> = pe_counts
        .iter()
        .enumerate()
        .filter(|_| !per_bench.is_empty())
        .map(|(k, &pes)| {
            let vals: Vec<f64> = per_bench.iter().map(|(_, s)| s[k].1).collect();
            (pes, geomean(&vals))
        })
        .collect();
    let doubling_gains = geomean_series
        .windows(2)
        .map(|w| (format!("{}->{} PEs", w[0].0, w[1].0), w[1].1 / w[0].1 - 1.0))
        .collect();
    Fig11Result {
        per_bench,
        geomean: geomean_series,
        doubling_gains,
    }
}

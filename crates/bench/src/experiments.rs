//! The experiments themselves: one method per table/figure.

use crate::format::geomean;
use crate::suite::Suite;
use benchmarks::{runner, AppVariant};
use energy::EnergyModel;
use parrot::quality::ErrorCdf;
use std::collections::HashMap;
use uarch::{CoreConfig, SimStats};

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Application domain.
    pub domain: String,
    /// Static function calls in the region.
    pub calls: usize,
    /// Static loops in the region.
    pub loops: usize,
    /// Static if/else constructs in the region.
    pub ifs: usize,
    /// Static region instructions.
    pub instructions: usize,
    /// Training samples observed.
    pub training_samples: usize,
    /// The topology the search selected.
    pub topology: String,
    /// Test-split MSE of the selected network.
    pub nn_mse: f64,
    /// Error metric name.
    pub error_metric: String,
    /// Whole-application error.
    pub app_error: f64,
}

/// One Figure 6 series: the error CDF sampled at fixed levels.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: String,
    /// `(error level, fraction of elements at or below it)`.
    pub points: Vec<(f64, f64)>,
}

/// One Figure 7 row: dynamic instruction counts.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline dynamic instructions.
    pub baseline: u64,
    /// Transformed-application non-queue instructions.
    pub npu_other: u64,
    /// Transformed-application NPU queue instructions.
    pub npu_queue: u64,
}

impl Fig7Row {
    /// Total transformed instructions normalized to baseline.
    pub fn normalized_total(&self) -> f64 {
        (self.npu_other + self.npu_queue) as f64 / self.baseline as f64
    }
}

/// One Figure 8 row: speedup and energy reduction.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// Core+NPU cycles.
    pub npu_cycles: u64,
    /// Core+Ideal-NPU cycles.
    pub ideal_cycles: u64,
    /// Whole-application speedup with the 8-PE NPU.
    pub speedup: f64,
    /// Speedup bound with a zero-cycle NPU.
    pub ideal_speedup: f64,
    /// Whole-application energy reduction with the 8-PE NPU.
    pub energy_reduction: f64,
    /// Energy-reduction bound with a zero-energy NPU.
    pub ideal_energy_reduction: f64,
}

/// One Figure 9 row: all-software NN execution.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// Slowdown vs. the untransformed baseline (>1 means slower).
    pub slowdown: f64,
}

/// One Figure 10 row: link-latency sensitivity.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: String,
    /// `(one-way link latency in cycles, whole-app speedup)`.
    pub speedups: Vec<(u64, f64)>,
}

/// Figure 11: PE-count sensitivity.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Per-benchmark speedups at each PE count.
    pub per_bench: Vec<(String, Vec<(usize, f64)>)>,
    /// Geometric-mean speedup at each PE count.
    pub geomean: Vec<(usize, f64)>,
    /// Geometric-mean gain from each doubling (the paper's bars).
    pub doubling_gains: Vec<(String, f64)>,
}

/// Runs experiments over a compiled suite, caching the expensive shared
/// pieces (baseline outputs and baseline timing).
pub struct Lab {
    /// The compiled suite.
    pub suite: Suite,
    energy: EnergyModel,
    baseline_outputs: HashMap<String, Vec<f32>>,
    npu_outputs: HashMap<String, Vec<f32>>,
    baseline_timing: HashMap<String, (SimStats, f64)>,
    npu_timing: HashMap<String, (SimStats, Option<npu::NpuStats>)>,
}

impl Lab {
    /// Wraps a compiled suite.
    pub fn new(suite: Suite) -> Self {
        Lab {
            suite,
            energy: EnergyModel::default(),
            baseline_outputs: HashMap::new(),
            npu_outputs: HashMap::new(),
            baseline_timing: HashMap::new(),
            npu_timing: HashMap::new(),
        }
    }

    fn baseline_output(&mut self, i: usize) -> Vec<f32> {
        let entry = &self.suite.entries[i];
        let name = entry.bench.name().to_string();
        if let Some(v) = self.baseline_outputs.get(&name) {
            return v.clone();
        }
        let out = runner::baseline_outputs(entry.bench.as_ref(), &self.suite.scale);
        self.baseline_outputs.insert(name, out.clone());
        out
    }

    fn npu_output(&mut self, i: usize) -> Vec<f32> {
        let entry = &self.suite.entries[i];
        let name = entry.bench.name().to_string();
        if let Some(v) = self.npu_outputs.get(&name) {
            return v.clone();
        }
        let variant = AppVariant::Npu(&entry.compiled);
        let app = entry.bench.build_app(&variant, &self.suite.scale);
        let run = runner::run_functional(&app, &variant).expect("npu app must run");
        let out = entry.bench.extract_outputs(&run.memory, &self.suite.scale);
        self.npu_outputs.insert(name, out.clone());
        out
    }

    fn baseline_timing(&mut self, i: usize) -> (SimStats, f64) {
        let entry = &self.suite.entries[i];
        let name = entry.bench.name().to_string();
        if let Some(v) = self.baseline_timing.get(&name) {
            return *v;
        }
        eprintln!("[timing] {name}: baseline (core only)…");
        let _span = telemetry::span("bench::lab", "timing.baseline");
        let app = entry
            .bench
            .build_app(&AppVariant::Precise, &self.suite.scale);
        let (_, stats, _) =
            runner::run_timed(&app, &AppVariant::Precise, CoreConfig::penryn_like())
                .expect("baseline app must run");
        let energy_pj = self.energy.core_energy(&stats).total_pj();
        self.baseline_timing.insert(name, (stats, energy_pj));
        (stats, energy_pj)
    }

    fn npu_timing(&mut self, i: usize) -> (SimStats, Option<npu::NpuStats>) {
        let entry = &self.suite.entries[i];
        let name = entry.bench.name().to_string();
        if let Some(v) = self.npu_timing.get(&name) {
            return *v;
        }
        eprintln!("[timing] {name}: core + 8-PE NPU…");
        let _span = telemetry::span("bench::lab", "timing.npu");
        let variant = AppVariant::Npu(&entry.compiled);
        let app = entry.bench.build_app(&variant, &self.suite.scale);
        let (_, stats, unit_stats) =
            runner::run_timed(&app, &variant, CoreConfig::penryn_like()).expect("npu app must run");
        self.npu_timing.insert(name, (stats, unit_stats));
        (stats, unit_stats)
    }

    /// Builds one JSON-serializable run report per benchmark, reusing the
    /// cached timing runs: compilation phase timings, the unified core and
    /// NPU counters for the baseline and transformed runs, the topology
    /// search summary, and the headline speedup gauge.
    pub fn run_reports(&mut self, suite_name: &str, mode: &str) -> Vec<telemetry::RunReport> {
        let mut reports = Vec::new();
        for i in 0..self.suite.entries.len() {
            let (base_stats, _) = self.baseline_timing(i);
            let (npu_stats, unit_stats) = self.npu_timing(i);
            let entry = &self.suite.entries[i];
            let mut report = telemetry::RunReport::new(suite_name, entry.bench.name(), mode);
            for phase in entry.compiled.phases() {
                report.push_phase(phase.clone());
            }
            let lint = entry.compiled.lint_summary();
            lint.export(&mut report.metrics, "lint");
            report.lint = lint;
            base_stats.export(&mut report.metrics, "uarch.baseline");
            npu_stats.export(&mut report.metrics, "uarch.npu");
            if let Some(unit) = unit_stats {
                unit.export(&mut report.metrics, "npu");
            }
            entry
                .compiled
                .search_outcome()
                .export_metrics(&mut report.metrics, "ann.search");
            if npu_stats.cycles > 0 {
                report.metrics.set_gauge(
                    "speedup",
                    base_stats.cycles as f64 / npu_stats.cycles as f64,
                );
            }
            reports.push(report);
        }
        reports
    }

    // -----------------------------------------------------------------
    // Table 1
    // -----------------------------------------------------------------

    /// Table 1: per-benchmark characterization, selected topology, NN
    /// MSE, and whole-application error.
    pub fn table1(&mut self) -> Vec<Table1Row> {
        let mut rows = Vec::new();
        for i in 0..self.suite.entries.len() {
            let reference = self.baseline_output(i);
            let approx = self.npu_output(i);
            let entry = &self.suite.entries[i];
            let counts = entry.bench.region().static_counts();
            let training = entry.bench.training_inputs(&self.suite.scale).len();
            rows.push(Table1Row {
                name: entry.bench.name().into(),
                domain: entry.bench.domain().into(),
                calls: counts.function_calls,
                loops: counts.loops,
                ifs: counts.ifs,
                instructions: counts.instructions,
                training_samples: training,
                topology: entry.compiled.config().topology().to_string(),
                nn_mse: entry.compiled.nn_mse(),
                error_metric: entry.bench.error_metric().into(),
                app_error: entry.bench.app_error(&reference, &approx),
            });
        }
        rows
    }

    // -----------------------------------------------------------------
    // Figure 6
    // -----------------------------------------------------------------

    /// Figure 6: CDF of per-element application output error, sampled at
    /// 0 %, 10 %, …, 100 % error levels.
    pub fn fig6(&mut self) -> Vec<Fig6Row> {
        let levels: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
        let mut rows = Vec::new();
        for i in 0..self.suite.entries.len() {
            let reference = self.baseline_output(i);
            let approx = self.npu_output(i);
            let entry = &self.suite.entries[i];
            let errors = entry.bench.element_errors(&reference, &approx);
            let cdf = ErrorCdf::from_errors(errors);
            rows.push(Fig6Row {
                name: entry.bench.name().into(),
                points: cdf.sample(&levels),
            });
        }
        rows
    }

    // -----------------------------------------------------------------
    // Figure 7
    // -----------------------------------------------------------------

    /// Figure 7: dynamic instructions of the transformed application
    /// (split into queue and other) normalized to the baseline.
    pub fn fig7(&mut self) -> Vec<Fig7Row> {
        let mut rows = Vec::new();
        for entry in &self.suite.entries {
            let scale = self.suite.scale;
            let base_app = entry.bench.build_app(&AppVariant::Precise, &scale);
            let (_, base_counts) = runner::run_counting(&base_app, &AppVariant::Precise)
                .expect("baseline app must run");
            let variant = AppVariant::Npu(&entry.compiled);
            let npu_app = entry.bench.build_app(&variant, &scale);
            let (_, npu_counts) =
                runner::run_counting(&npu_app, &variant).expect("npu app must run");
            rows.push(Fig7Row {
                name: entry.bench.name().into(),
                baseline: base_counts.total,
                npu_other: npu_counts.total - npu_counts.npu_queue,
                npu_queue: npu_counts.npu_queue,
            });
        }
        rows
    }

    // -----------------------------------------------------------------
    // Figure 8
    // -----------------------------------------------------------------

    /// Figure 8: whole-application speedup (8a) and energy reduction (8b)
    /// for the 8-PE NPU and the ideal zero-cost NPU.
    pub fn fig8(&mut self) -> Vec<Fig8Row> {
        let mut rows = Vec::new();
        for i in 0..self.suite.entries.len() {
            let (base_stats, base_energy) = self.baseline_timing(i);
            let (npu_stats, npu_unit_stats) = self.npu_timing(i);
            let entry = &self.suite.entries[i];
            let scale = self.suite.scale;
            let name = entry.bench.name().to_string();
            let variant = AppVariant::Npu(&entry.compiled);
            let app = entry.bench.build_app(&variant, &scale);
            let npu_energy = self
                .energy
                .system_energy(&npu_stats, npu_unit_stats.as_ref())
                .total_pj();

            eprintln!("[timing] {name}: core + ideal NPU…");
            let t = entry.compiled.config().topology();
            let (_, ideal_stats) = runner::run_timed_ideal(
                &app,
                &variant,
                CoreConfig::penryn_like(),
                t.inputs(),
                t.outputs(),
            )
            .expect("ideal npu app must run");
            let ideal_energy = self.energy.core_energy(&ideal_stats).total_pj();

            rows.push(Fig8Row {
                name,
                baseline_cycles: base_stats.cycles,
                npu_cycles: npu_stats.cycles,
                ideal_cycles: ideal_stats.cycles,
                speedup: base_stats.cycles as f64 / npu_stats.cycles as f64,
                ideal_speedup: base_stats.cycles as f64 / ideal_stats.cycles as f64,
                energy_reduction: base_energy / npu_energy,
                ideal_energy_reduction: base_energy / ideal_energy,
            });
        }
        rows
    }

    // -----------------------------------------------------------------
    // Figure 9
    // -----------------------------------------------------------------

    /// Figure 9: slowdown when the transformed program evaluates the
    /// network in software on the core (no NPU).
    pub fn fig9(&mut self) -> Vec<Fig9Row> {
        let mut rows = Vec::new();
        for i in 0..self.suite.entries.len() {
            let (base_stats, _) = self.baseline_timing(i);
            let entry = &self.suite.entries[i];
            eprintln!("[timing] {}: software NN…", entry.bench.name());
            let variant = AppVariant::SoftwareNn(&entry.compiled);
            let app = entry.bench.build_app(&variant, &self.suite.scale);
            let (_, stats, _) = runner::run_timed(&app, &variant, CoreConfig::penryn_like())
                .expect("software-nn app must run");
            rows.push(Fig9Row {
                name: entry.bench.name().into(),
                slowdown: stats.cycles as f64 / base_stats.cycles as f64,
            });
        }
        rows
    }

    // -----------------------------------------------------------------
    // Figure 10
    // -----------------------------------------------------------------

    /// Figure 10: speedup as the one-way CPU↔NPU link latency grows.
    pub fn fig10(&mut self, latencies: &[u64]) -> Vec<Fig10Row> {
        let mut rows = Vec::new();
        for i in 0..self.suite.entries.len() {
            let (base_stats, _) = self.baseline_timing(i);
            let entry = &self.suite.entries[i];
            let scale = self.suite.scale;
            let variant = AppVariant::Npu(&entry.compiled);
            let app = entry.bench.build_app(&variant, &scale);
            let mut speedups = Vec::new();
            for &lat in latencies {
                eprintln!("[timing] {}: link latency {lat}…", entry.bench.name());
                let cfg = CoreConfig::with_npu_link_latency(lat);
                let (_, stats, _) =
                    runner::run_timed(&app, &variant, cfg).expect("npu app must run");
                speedups.push((lat, base_stats.cycles as f64 / stats.cycles as f64));
            }
            rows.push(Fig10Row {
                name: entry.bench.name().into(),
                speedups,
            });
        }
        rows
    }

    // -----------------------------------------------------------------
    // Figure 11
    // -----------------------------------------------------------------

    /// Figure 11: speedup at each PE count and the geometric-mean gain
    /// per doubling.
    pub fn fig11(&mut self, pe_counts: &[usize]) -> Fig11Result {
        let mut per_bench: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
        for i in 0..self.suite.entries.len() {
            let (base_stats, _) = self.baseline_timing(i);
            let entry = &self.suite.entries[i];
            let scale = self.suite.scale;
            let variant = AppVariant::Npu(&entry.compiled);
            let app = entry.bench.build_app(&variant, &scale);
            let mut series = Vec::new();
            for &pes in pe_counts {
                eprintln!("[timing] {}: {pes} PEs…", entry.bench.name());
                // Sweeps below/above the default need relaxed capacity
                // checks (the paper's hardware is sized for 8 PEs).
                let params = npu::NpuParams::with_pes(pes).unbounded();
                let sim = entry
                    .compiled
                    .make_npu_with(&params)
                    .expect("unbounded npu always schedules");
                let (_, stats, _) =
                    runner::run_timed_with_npu(&app, &variant, CoreConfig::penryn_like(), sim)
                        .expect("npu app must run");
                series.push((pes, base_stats.cycles as f64 / stats.cycles as f64));
            }
            per_bench.push((entry.bench.name().into(), series));
        }
        let geomean_series: Vec<(usize, f64)> = pe_counts
            .iter()
            .enumerate()
            .map(|(k, &pes)| {
                let vals: Vec<f64> = per_bench.iter().map(|(_, s)| s[k].1).collect();
                (pes, geomean(&vals))
            })
            .collect();
        let doubling_gains = geomean_series
            .windows(2)
            .map(|w| (format!("{}->{} PEs", w[0].0, w[1].0), w[1].1 / w[0].1 - 1.0))
            .collect();
        Fig11Result {
            per_bench,
            geomean: geomean_series,
            doubling_gains,
        }
    }
}

//! The shared sweep driver behind `parrot-run`, `run_all`, and the
//! per-figure binaries: options → [`SweepSpec`] → sweep → printed
//! artifacts, JSON reports, scheduler accounting, exit code.

use crate::cli::Options;
use crate::experiments;
use crate::present;
use crate::suite::compile_params;
use harness::{run_sweep, Experiment, SweepResult, SweepSpec};

/// Builds the sweep specification the options describe.
pub fn spec(suite_name: &str, opts: &Options) -> SweepSpec {
    let mut spec = SweepSpec::new(
        suite_name,
        opts.mode(),
        opts.scale(),
        compile_params(opts.fast),
    );
    if let Some(name) = &opts.only {
        spec.benches = vec![name.clone()];
    }
    spec.jobs = opts.jobs;
    spec.cache_dir = opts.cache_dir.clone();
    spec.root_seed = opts.seed;
    // Counter time-series only make sense when someone is recording them.
    if opts.trace_out.is_some() {
        spec.sample_interval_us = Some(opts.trace_sample_us);
    }
    spec
}

/// Resolves the positional experiment names, falling back to `default`
/// when none were given.
///
/// # Errors
///
/// Fails on an unknown experiment name.
pub fn requested_experiments(
    opts: &Options,
    default: &[Experiment],
) -> Result<Vec<Experiment>, String> {
    if opts.experiments.is_empty() {
        return Ok(default.to_vec());
    }
    opts.experiments
        .iter()
        .map(|s| Experiment::parse(s).ok_or_else(|| format!("unknown experiment `{s}`")))
        .collect()
}

/// Prints every requested experiment's table/figure from the sweep's
/// artifacts, in paper order.
pub fn print_requested(result: &SweepResult, requested: &[Experiment], spec: &SweepSpec) {
    let has = |e: Experiment| requested.contains(&e);
    if has(Experiment::Table1) {
        present::print_table1(&experiments::table1_rows(result, &spec.scale));
    }
    if has(Experiment::Fig6) {
        present::print_fig6(&experiments::fig6_rows(result));
    }
    if has(Experiment::Fig7) {
        present::print_fig7(&experiments::fig7_rows(result));
    }
    if has(Experiment::Fig8) {
        let rows = experiments::fig8_rows(result);
        present::print_fig8a(&rows);
        present::print_fig8b(&rows);
    }
    if has(Experiment::Fig9) {
        present::print_fig9(&experiments::fig9_rows(result));
    }
    if has(Experiment::Fig10) {
        present::print_fig10(
            &experiments::fig10_rows(result, &spec.link_latencies),
            &spec.link_latencies,
        );
    }
    if has(Experiment::Fig11) {
        present::print_fig11(
            &experiments::fig11_result(result, &spec.pe_counts),
            &spec.pe_counts,
        );
    }
}

/// Runs the full driver: sweep, print, JSON reports, failure summary.
/// Returns the process exit code (0 clean, 1 on job failures or a failed
/// `--require-warm` check, 2 on a malformed invocation).
pub fn run(suite_name: &str, opts: &Options, default_experiments: &[Experiment]) -> i32 {
    let requested = match requested_experiments(opts, default_experiments) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let t0 = std::time::Instant::now();
    let mut spec = spec(suite_name, opts);
    spec.experiments = requested.clone();
    // Streaming check: the cycle-level jobs feed trace events straight into
    // the core, so the largest buffer any core holds is bounded by its feed
    // back-pressure threshold, not by trace length. Measure it per sweep.
    uarch::reset_peak_trace_buffer();
    let result = match run_sweep(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    let peak_trace_buffer = uarch::peak_trace_buffer();

    print_requested(&result, &requested, &spec);

    // Machine-readable reports: one per benchmark (deterministic) plus
    // the sweep-level report carrying the scheduler/cache section.
    if let Some(dir) = &opts.json_out {
        for report in result.reports() {
            match report.write_into(dir) {
                Ok(path) => eprintln!("[{suite_name}] wrote {}", path.display()),
                Err(e) => eprintln!("[{suite_name}] failed to write report: {e}"),
            }
        }
        let mut sweep_report = result.sweep_report(suite_name, opts.mode());
        sweep_report
            .metrics
            .add("scheduler.peak_trace_buffer_events", peak_trace_buffer);
        match sweep_report.write_into(dir) {
            Ok(path) => eprintln!("[{suite_name}] wrote {}", path.display()),
            Err(e) => eprintln!("[{suite_name}] failed to write sweep report: {e}"),
        }
    }

    present::print_scheduler(&result.scheduler);
    present::print_peak_trace_buffer(peak_trace_buffer);

    // Trace epilogue: snapshot every distribution the sweep produced into
    // the event stream (the Chrome sink folds them into the trace file's
    // `parrotHistograms` footer), then flush — the global sink registry
    // is never dropped, so the footer is only written here.
    let snapshot = |name: &str, hist: &telemetry::Histogram| {
        telemetry::emit(telemetry::Level::Info, "bench::drive", || {
            telemetry::EventKind::HistogramSnapshot {
                name: name.to_string(),
                hist: hist.clone(),
            }
        });
    };
    for (stage, hist) in &result.stage_job_us {
        snapshot(&format!("sched.job_us.{stage}"), hist);
    }
    for (name, hist) in result.samples.histograms() {
        snapshot(name, hist);
    }
    for report in result.reports() {
        for (name, dist) in &report.distributions {
            snapshot(&format!("{}.{name}", report.benchmark), &dist.hist);
        }
    }
    telemetry::flush_sinks();

    // One broken benchmark must not hide the others' results — everything
    // above still ran and printed — but the process has to say so.
    if !result.ok() {
        eprintln!(
            "[{suite_name}] FAILED: {} job(s) failed, {} skipped downstream:",
            result.failures.len(),
            result.skipped.len()
        );
        eprint!("{}", result.failure_summary());
        return 1;
    }
    if opts.require_warm && !result.scheduler.fully_warm() {
        eprintln!(
            "[{suite_name}] --require-warm: only {}/{} jobs came from the cache",
            result.scheduler.jobs_from_cache, result.scheduler.jobs_total
        );
        return 1;
    }
    eprintln!("[{suite_name}] completed in {:.1?}", t0.elapsed());
    0
}

//! Experiment binaries: regenerate every table and figure of the paper's
//! evaluation (Section 7) on top of the `harness` crate's parallel,
//! cached sweep scheduler.
//!
//! Each `src/bin/*` binary reproduces one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `parrot-run` | any subset of experiments (`parrot-run table1 fig8 …`) |
//! | `run_all` | everything in one pass (shared training, parallel jobs) |
//! | `table1` | Table 1 — benchmark characterization & Parrot results |
//! | `table2` | Table 2 — simulated microarchitectural configuration |
//! | `fig06_error_cdf` | Figure 6 — CDF of per-element output error |
//! | `fig07_dynamic_insts` | Figure 7 — normalized dynamic instructions |
//! | `fig08_speedup` | Figure 8a — whole-application speedup |
//! | `fig08_energy` | Figure 8b — whole-application energy reduction |
//! | `fig09_software_nn` | Figure 9 — slowdown with software NN execution |
//! | `fig10_latency` | Figure 10 — speedup vs. CPU↔NPU link latency |
//! | `fig11_pe_count` | Figure 11 — speedup gain per PE-count doubling |
//!
//! All binaries accept `--fast` (reduced input sizes and training
//! budget), `--bench <name>` (restrict to one benchmark), `--jobs N`
//! (scheduler workers), and `--cache-dir <dir>` (content-addressed
//! artifact cache: warm re-runs do no training and no simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod drive;
pub mod experiments;
pub mod format;
pub mod present;
pub mod suite;

pub use cli::Options;
pub use suite::compile_params;

//! Plain-text result formatting shared by the experiment binaries.

/// Geometric mean of strictly positive values (the paper's summary
/// statistic for speedups).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Renders an aligned text table: `header` then `rows`, all as strings.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate().take(n_cols) {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        s.trim_end().to_string()
    };
    let mut out = String::new();
    out.push_str(&line(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a     "));
        assert!(lines[3].starts_with("longer"));
    }
}

//! Printing: rendering experiment rows and scheduler accounting to
//! stdout, shared by `parrot-run`, `run_all`, and the per-figure
//! binaries.

use crate::experiments::{Fig10Row, Fig11Result, Fig6Row, Fig7Row, Fig8Row, Fig9Row, Table1Row};
use crate::format::{geomean, render_table};
use telemetry::SchedulerSummary;

/// Prints Table 1.
pub fn print_table1(rows: &[Table1Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.domain.clone(),
                r.calls.to_string(),
                r.loops.to_string(),
                r.ifs.to_string(),
                r.instructions.to_string(),
                r.training_samples.to_string(),
                r.topology.clone(),
                format!("{:.5}", r.nn_mse),
                r.error_metric.clone(),
                format!("{:.2}%", 100.0 * r.app_error),
            ]
        })
        .collect();
    println!("\nTable 1: benchmarks, transformed-function characterization, and Parrot results");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "domain",
                "#calls",
                "#loops",
                "#ifs",
                "#insts",
                "#train",
                "NN topology",
                "NN MSE",
                "error metric",
                "error",
            ],
            &table
        )
    );
}

/// Prints Figure 6 (error CDF).
pub fn print_fig6(rows: &[Fig6Row]) {
    let mut header: Vec<String> = vec!["benchmark".into()];
    if let Some(first) = rows.first() {
        for (x, _) in &first.points {
            header.push(format!("<={:.0}%", 100.0 * x));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.points.iter().map(|(_, y)| format!("{:.1}%", 100.0 * y)));
            row
        })
        .collect();
    println!("\nFigure 6: cumulative distribution of output-element error");
    println!("{}", render_table(&header_refs, &table));
}

/// Prints Figure 7 (normalized dynamic instructions).
pub fn print_fig7(rows: &[Fig7Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.baseline.to_string(),
                format!("{:.3}", r.npu_other as f64 / r.baseline as f64),
                format!("{:.3}", r.npu_queue as f64 / r.baseline as f64),
                format!("{:.3}", r.normalized_total()),
            ]
        })
        .collect();
    println!("\nFigure 7: normalized dynamic instructions after the Parrot transformation");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "baseline insts",
                "other (norm)",
                "queue (norm)",
                "total (norm)"
            ],
            &table
        )
    );
}

/// Prints Figure 8a (speedup).
pub fn print_fig8a(rows: &[Fig8Row]) {
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.baseline_cycles.to_string(),
                r.npu_cycles.to_string(),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.ideal_speedup),
            ]
        })
        .collect();
    if rows.len() > 1 {
        let s: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        let i: Vec<f64> = rows.iter().map(|r| r.ideal_speedup).collect();
        table.push(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            format!("{:.2}x", geomean(&s)),
            format!("{:.2}x", geomean(&i)),
        ]);
    }
    println!("\nFigure 8a: total application speedup with 8-PE NPU");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "baseline cycles",
                "npu cycles",
                "Core+NPU",
                "Core+Ideal NPU"
            ],
            &table
        )
    );
}

/// Prints Figure 8b (energy reduction).
pub fn print_fig8b(rows: &[Fig8Row]) {
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}x", r.energy_reduction),
                format!("{:.2}x", r.ideal_energy_reduction),
            ]
        })
        .collect();
    if rows.len() > 1 {
        let e: Vec<f64> = rows.iter().map(|r| r.energy_reduction).collect();
        let i: Vec<f64> = rows.iter().map(|r| r.ideal_energy_reduction).collect();
        table.push(vec![
            "geomean".into(),
            format!("{:.2}x", geomean(&e)),
            format!("{:.2}x", geomean(&i)),
        ]);
    }
    println!("\nFigure 8b: total application energy reduction with 8-PE NPU");
    println!(
        "{}",
        render_table(&["benchmark", "Core+NPU", "Core+Ideal NPU"], &table)
    );
}

/// Prints Figure 9 (software-NN slowdown).
pub fn print_fig9(rows: &[Fig9Row]) {
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.clone(), format!("{:.2}x", r.slowdown)])
        .collect();
    if rows.len() > 1 {
        let s: Vec<f64> = rows.iter().map(|r| r.slowdown).collect();
        table.push(vec!["geomean".into(), format!("{:.2}x", geomean(&s))]);
    }
    println!("\nFigure 9: slowdown with software neural network execution");
    println!("{}", render_table(&["benchmark", "slowdown"], &table));
}

/// Prints Figure 10 (link-latency sensitivity).
pub fn print_fig10(rows: &[Fig10Row], latencies: &[u64]) {
    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(latencies.iter().map(|l| format!("{l} cycle(s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.speedups.iter().map(|(_, s)| format!("{s:.2}x")));
            row
        })
        .collect();
    println!("\nFigure 10: speedup sensitivity to NPU communication latency");
    println!("{}", render_table(&header_refs, &table));
}

/// Prints Figure 11 (PE-count sensitivity).
pub fn print_fig11(result: &Fig11Result, pe_counts: &[usize]) {
    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(pe_counts.iter().map(|p| format!("{p} PEs")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table: Vec<Vec<String>> = result
        .per_bench
        .iter()
        .map(|(name, series)| {
            let mut row = vec![name.clone()];
            row.extend(series.iter().map(|(_, s)| format!("{s:.2}x")));
            row
        })
        .collect();
    if !result.geomean.is_empty() {
        let mut geo = vec!["geomean".to_string()];
        geo.extend(result.geomean.iter().map(|(_, s)| format!("{s:.2}x")));
        table.push(geo);
    }
    println!("\nFigure 11: speedup at each PE count");
    println!("{}", render_table(&header_refs, &table));

    println!("Geometric-mean speedup gain per doubling:");
    for (label, gain) in &result.doubling_gains {
        println!("  {label:<12} {:+.1}%", 100.0 * gain);
    }
}

/// Prints the scheduler/cache accounting of a sweep to stderr (it is
/// operational telemetry, not experiment output).
pub fn print_scheduler(s: &SchedulerSummary) {
    eprintln!(
        "[scheduler] {} workers, {} jobs: {} executed, {} from cache, {} failed, {} skipped",
        s.workers, s.jobs_total, s.jobs_executed, s.jobs_from_cache, s.jobs_failed, s.jobs_skipped
    );
    eprintln!(
        "[scheduler] cache: {} hits / {} misses ({:.0}% hit rate), {} writes; max queue depth {}",
        s.cache_hits,
        s.cache_misses,
        100.0 * s.hit_rate(),
        s.cache_writes,
        s.max_queue_depth
    );
    for (stage, us) in &s.stage_wall_us {
        eprintln!("[scheduler]   {stage:<14} {:>10.1} ms", *us as f64 / 1000.0);
    }
    eprintln!(
        "[scheduler] wall clock {:.1} ms",
        s.wall_clock_us as f64 / 1000.0
    );
}

/// Prints the peak streaming trace-buffer occupancy measured across the
/// sweep's cycle-level simulations (0 when the sweep ran entirely from the
/// artifact cache, since no core then processed a trace).
pub fn print_peak_trace_buffer(events: u64) {
    eprintln!("[scheduler] peak trace buffer {events} events");
}

//! Criterion microbenchmarks for the substrate components: NPU invocation
//! latency per paper topology, backpropagation throughput, core-model
//! simulation rate, and one scaled-down end-to-end figure computation.

use ann::{
    mse_batch_with, mse_with, BatchScratch, Dataset, Mlp, Normalizer, QFormat, QuantScratch,
    QuantizedMlp, Scratch, SigmoidLut, Topology, TrainParams, Trainer, LANES,
};
use approx_ir::{NpuPort, OpClass, TraceEvent, TraceSink};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use npu::{NpuConfig, NpuParams, NpuSim};
use parrot::NpuRuntime;
use uarch::{Core, CoreConfig};

fn paper_topologies() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("fft", vec![1, 4, 4, 2]),
        ("inversek2j", vec![2, 8, 2]),
        ("jmeint", vec![18, 32, 8, 2]),
        ("jpeg", vec![64, 16, 64]),
        ("kmeans", vec![6, 8, 4, 1]),
        ("sobel", vec![9, 8, 1]),
    ]
}

fn config_for(layers: Vec<usize>) -> NpuConfig {
    let t = Topology::new(layers).unwrap();
    let (i, o) = (t.inputs(), t.outputs());
    NpuConfig::new(
        Mlp::seeded(t, 1),
        Normalizer::identity(i),
        Normalizer::identity(o),
    )
}

/// Cycle-accurate NPU invocation, per paper topology.
fn bench_npu_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("npu_invocation");
    for (name, layers) in paper_topologies() {
        let config = config_for(layers);
        let inputs: Vec<f32> = (0..config.topology().inputs())
            .map(|i| 0.1 + 0.8 * (i as f32 / 64.0))
            .collect();
        group.bench_function(name, |b| {
            let mut sim = NpuSim::new(NpuParams::default());
            sim.configure(&config).unwrap();
            b.iter(|| sim.evaluate_invocation(&inputs).unwrap());
        });
    }
    group.finish();
}

/// One backpropagation epoch over 500 samples (sobel-sized network).
fn bench_training_epoch(c: &mut Criterion) {
    let t = Topology::new(vec![9, 8, 1]).unwrap();
    let mut data = Dataset::new(9, 1);
    for k in 0..500 {
        let input: Vec<f32> = (0..9).map(|i| ((k * 7 + i) % 97) as f32 / 97.0).collect();
        let target = input.iter().sum::<f32>() / 9.0;
        data.push(&input, &[target]).unwrap();
    }
    c.bench_function("backprop_epoch_500x89w", |b| {
        b.iter_batched(
            || Mlp::seeded(t.clone(), 5),
            |mut mlp| {
                Trainer::new(TrainParams {
                    epochs: 1,
                    ..TrainParams::default()
                })
                .train(&mut mlp, &data)
            },
            BatchSize::SmallInput,
        );
    });
}

/// One fused forward+backward SGD step (sobel-sized network), scratch
/// reused across iterations — the innermost kernel of the topology search.
fn bench_backprop_one(c: &mut Criterion) {
    let t = Topology::new(vec![9, 8, 1]).unwrap();
    let input: Vec<f32> = (0..9).map(|i| (i as f32 * 0.11) % 1.0).collect();
    let target = [0.5f32];
    let trainer = Trainer::new(TrainParams::default());
    c.bench_function("backprop_one", |b| {
        let mut mlp = Mlp::seeded(t.clone(), 5);
        let mut scratch = Scratch::for_topology(&t);
        b.iter(|| trainer.step(&mut mlp, &input, &target, &mut scratch));
    });
}

/// Full-dataset MSE evaluation (500 sobel-sized samples) with a reused
/// scratch — the per-candidate scoring cost in the topology search.
fn bench_mse_eval(c: &mut Criterion) {
    let t = Topology::new(vec![9, 8, 1]).unwrap();
    let mut data = Dataset::new(9, 1);
    for k in 0..500 {
        let input: Vec<f32> = (0..9).map(|i| ((k * 7 + i) % 97) as f32 / 97.0).collect();
        let target = input.iter().sum::<f32>() / 9.0;
        data.push(&input, &[target]).unwrap();
    }
    let mlp = Mlp::seeded(t.clone(), 5);
    c.bench_function("mse_eval_500x89w", |b| {
        let mut scratch = Scratch::for_topology(&t);
        b.iter(|| mse_with(&mlp, &data, &mut scratch));
    });
}

/// The 500-sample sobel-sized reference dataset used by the batched-vs-
/// scalar A/B groups (identical to `mse_eval_500x89w`'s workload).
fn reference_dataset_500x89w() -> (Topology, Dataset) {
    let t = Topology::new(vec![9, 8, 1]).unwrap();
    let mut data = Dataset::new(9, 1);
    for k in 0..500 {
        let input: Vec<f32> = (0..9).map(|i| ((k * 7 + i) % 97) as f32 / 97.0).collect();
        let target = input.iter().sum::<f32>() / 9.0;
        data.push(&input, &[target]).unwrap();
    }
    (t, data)
}

/// Batched vs. scalar forward/MSE on the 500x89w reference workload. The
/// scalar rows re-measure the existing kernels inside the same group so the
/// batched-vs-scalar ratio is an interleaved same-window A/B, immune to the
/// host's non-stationary noise. The `lut` pair is the NPU-datapath variant
/// (sigmoid LUT instead of exact `exp`).
fn bench_forward_batch(c: &mut Criterion) {
    let (t, data) = reference_dataset_500x89w();
    let mlp = Mlp::seeded(t.clone(), 5);
    let lut = SigmoidLut::default();
    let inputs: Vec<&[f32]> = (0..data.len()).map(|i| data.input(i)).collect();

    let mut group = c.benchmark_group("forward_batch");
    group.bench_function("scalar_500x89w", |b| {
        let mut scratch = Scratch::for_topology(&t);
        b.iter(|| mse_with(&mlp, &data, &mut scratch));
    });
    group.bench_function("batched_500x89w", |b| {
        let mut batch = BatchScratch::for_topology(&t);
        b.iter(|| mse_batch_with(&mlp, &data, &mut batch));
    });
    group.bench_function("scalar_lut_500x89w", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for input in &inputs {
                acc += mlp.feed_forward_lut(input, &lut)[0];
            }
            acc
        });
    });
    group.bench_function("batched_lut_500x89w", |b| {
        let mut batch = BatchScratch::for_topology(&t);
        let mut out = [0.0f32; LANES];
        b.iter(|| {
            let mut acc = 0.0f32;
            for chunk in inputs.chunks(LANES) {
                batch.forward_block_lut(&mlp, chunk, &mut out, &lut);
                for &y in &out[..chunk.len()] {
                    acc += y;
                }
            }
            acc
        });
    });
    group.finish();
}

/// Minibatch (accumulated-gradient) epoch vs. the per-sample SGD epoch on
/// the same 500-sample workload: same forward+backward arithmetic per
/// sample, weights touched once per 8-sample block instead of per sample.
fn bench_backprop_batch(c: &mut Criterion) {
    let (t, data) = reference_dataset_500x89w();
    let mut group = c.benchmark_group("backprop_batch");
    group.bench_function("epoch_500x89w_b8", |b| {
        b.iter_batched(
            || Mlp::seeded(t.clone(), 5),
            |mut mlp| {
                let mut batch = BatchScratch::for_topology(&t);
                let idx: Vec<usize> = (0..data.len()).collect();
                for chunk in idx.chunks(LANES) {
                    let ins: Vec<&[f32]> = chunk.iter().map(|&i| data.input(i)).collect();
                    let tgts: Vec<&[f32]> = chunk.iter().map(|&i| data.output(i)).collect();
                    batch.begin_batch(&mlp);
                    batch.accumulate_block(&mlp, &ins, &tgts);
                    batch.apply_update(&mut mlp, 0.01, 0.9);
                }
                mlp
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Fixed-point inference on the 500x89w reference workload: the int8 and
/// int16 NPU datapath (Q7.23 accumulator, as the precision analysis proves
/// for sobel) next to the f32 oracle running the identical loop.
fn bench_quant_forward(c: &mut Criterion) {
    let (t, data) = reference_dataset_500x89w();
    let mlp = Mlp::seeded(t, 5);
    let acc = QFormat::new(7, 23);
    let mut group = c.benchmark_group("quant_forward");
    for (label, bits) in [("int8_500x89w", 8u8), ("int16_500x89w", 16)] {
        let q = QuantizedMlp::quantize(&mlp, bits, acc);
        group.bench_function(label, |b| {
            let mut scratch = QuantScratch::new();
            let mut out = vec![0.0f32; 1];
            b.iter(|| {
                let mut acc_sum = 0.0f32;
                for i in 0..data.len() {
                    q.forward_with(data.input(i), &mut scratch, &mut out);
                    acc_sum += out[0];
                }
                acc_sum
            });
        });
    }
    group.bench_function("f32_oracle_500x89w", |b| {
        b.iter(|| {
            let mut acc_sum = 0.0f32;
            for i in 0..data.len() {
                acc_sum += mlp.feed_forward(data.input(i))[0];
            }
            acc_sum
        });
    });
    group.finish();
}

/// The interpreter-facing functional NPU port (batched replay kernel,
/// no cycle machinery), per paper topology — the counterpart of
/// `npu_invocation`, which drives the cycle-accurate simulator.
fn bench_npu_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("npu_functional");
    for (name, layers) in paper_topologies() {
        let config = config_for(layers);
        let n_out = config.topology().outputs();
        let inputs: Vec<f32> = (0..config.topology().inputs())
            .map(|i| 0.1 + 0.8 * (i as f32 / 64.0))
            .collect();
        group.bench_function(name, |b| {
            let mut rt = NpuRuntime::configured(NpuParams::default(), &config).unwrap();
            b.iter(|| {
                for &v in &inputs {
                    rt.enq_data(v);
                }
                let mut acc = 0.0f32;
                for _ in 0..n_out {
                    acc += rt.deq_data();
                }
                acc
            });
        });
    }
    group.finish();
}

/// Streaming trace replay throughput: push a fixed event stream through a
/// `TraceSink` (the core model and the cycle-accurate NPU) exactly the way
/// the sweep's cycle-level jobs do.
fn bench_trace_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_replay");

    // 10k mixed ALU/FP events through the out-of-order core.
    let core_events: Vec<TraceEvent> = (0..10_000)
        .map(|i| {
            let class = if i % 4 == 0 {
                OpClass::FpAdd
            } else {
                OpClass::IntAlu
            };
            TraceEvent::simple(i % 64, class, [None; 3], Some((i % 50 + 8) as u16))
        })
        .collect();
    group.bench_function("core_10k_events", |b| {
        b.iter(|| {
            let mut core = Core::new(CoreConfig::penryn_like());
            for ev in &core_events {
                core.event(ev);
            }
            core.finish().cycles
        });
    });

    // 20 sobel-shaped invocations (9 enq.d + 1 deq.d each) replayed into
    // the NPU's timing-only sink.
    let config = config_for(vec![9, 8, 1]);
    let mut npu_events = Vec::new();
    for _ in 0..20 {
        for _ in 0..9 {
            npu_events.push(TraceEvent::simple(0, OpClass::NpuEnqD, [None; 3], None));
        }
        npu_events.push(TraceEvent::simple(0, OpClass::NpuDeqD, [None; 3], None));
    }
    group.bench_function("npu_20_invocations", |b| {
        b.iter(|| {
            let mut sim = NpuSim::new(NpuParams::default());
            sim.configure(&config).unwrap();
            for ev in &npu_events {
                sim.event(ev);
            }
            sim.stats().invocations
        });
    });
    group.finish();
}

/// Core-model throughput: simulate 10k independent ALU instructions.
fn bench_core_throughput(c: &mut Criterion) {
    let events: Vec<TraceEvent> = (0..10_000)
        .map(|i| {
            TraceEvent::simple(
                i % 64,
                OpClass::IntAlu,
                [None; 3],
                Some((i % 50 + 8) as u16),
            )
        })
        .collect();
    c.bench_function("core_sim_10k_alu", |b| {
        b.iter(|| {
            let mut core = Core::new(CoreConfig::penryn_like());
            for ev in &events {
                core.feed(*ev);
            }
            core.finish().cycles
        });
    });
}

/// MLP forward pass (functional NN evaluation) per paper topology.
fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_forward");
    for (name, layers) in paper_topologies() {
        let config = config_for(layers);
        let inputs: Vec<f32> = (0..config.topology().inputs())
            .map(|i| i as f32 / 64.0)
            .collect();
        group.bench_function(name, |b| {
            b.iter(|| config.evaluate(&inputs));
        });
    }
    group.finish();
}

/// Telemetry overhead on the simulator hot loops: identical work with
/// the collector off (the default) vs. fully enabled into a black-hole
/// sink. The disabled path must stay within noise (<2%) of the seed's
/// uninstrumented loop — emission sites cost one relaxed atomic load.
/// Also measures the unit costs of the histogram primitives
/// (`hist_record`, `hist_quantile`) and span creation with and without
/// an attached sink.
fn bench_telemetry_overhead(c: &mut Criterion) {
    struct NullSink;
    impl telemetry::Sink for NullSink {
        fn record(&self, event: &telemetry::Event) {
            criterion::black_box(event.seq);
        }
    }

    let config = config_for(vec![9, 8, 1]);
    let inputs: Vec<f32> = (0..9).map(|i| 0.1 + 0.08 * i as f32).collect();
    let events: Vec<TraceEvent> = (0..10_000)
        .map(|i| {
            TraceEvent::simple(
                i % 64,
                OpClass::IntAlu,
                [None; 3],
                Some((i % 50 + 8) as u16),
            )
        })
        .collect();
    let run_core = |events: &[TraceEvent]| {
        let mut core = Core::new(CoreConfig::penryn_like());
        for ev in events {
            core.feed(*ev);
        }
        core.finish().cycles
    };

    let mut group = c.benchmark_group("telemetry_overhead");

    // Histogram primitives: one log-bucketed observation, and one p99
    // query over a well-populated histogram — the unit costs behind every
    // per-invocation latency / per-element error sample the sweep records.
    group.bench_function("hist_record", |b| {
        let mut hist = telemetry::Histogram::default();
        let mut x = 1.0f64;
        b.iter(|| {
            x = (x * 1.0001 + 0.37) % 1.0e9;
            hist.observe(criterion::black_box(x));
            hist.count
        });
    });
    group.bench_function("hist_quantile", |b| {
        let mut hist = telemetry::Histogram::default();
        for i in 0..100_000u32 {
            hist.observe(f64::from(i % 4096) + 0.5);
        }
        b.iter(|| criterion::black_box(&hist).p99());
    });

    telemetry::reset();
    // Span creation with the collector off: the id is still allocated
    // (one relaxed atomic add) but no event is built or sunk.
    group.bench_function("span/disabled", |b| {
        b.iter(|| {
            let span = telemetry::span("bench::microbench", "overhead_probe");
            span.id()
        });
    });
    group.bench_function("npu_hot_loop/disabled", |b| {
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        b.iter(|| sim.evaluate_invocation(&inputs).unwrap());
    });
    group.bench_function("core_sim_10k_alu/disabled", |b| {
        b.iter(|| run_core(&events))
    });

    telemetry::add_sink(Box::new(NullSink));
    telemetry::set_level(telemetry::Level::Trace);
    // Span creation with a sink attached: builds both PhaseStart and
    // PhaseEnd events and pushes them through the sink registry.
    group.bench_function("span/trace_enabled", |b| {
        b.iter(|| {
            let span = telemetry::span("bench::microbench", "overhead_probe");
            span.id()
        });
    });
    group.bench_function("npu_hot_loop/trace_enabled", |b| {
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        b.iter(|| sim.evaluate_invocation(&inputs).unwrap());
    });
    group.bench_function("core_sim_10k_alu/trace_enabled", |b| {
        b.iter(|| run_core(&events))
    });
    telemetry::reset();
    group.finish();
}

/// Static-analysis cost on the region compiler path: the full verifier
/// (CFG, dominators, liveness, interval fixpoint, all lints) and the
/// precision report, each on the heaviest region (jpeg: 456
/// instructions, triple-nested DCT loops) and the lightest interesting
/// one (sobel: loop-free). Every `parrot-run` sweep and every
/// `parrot-lint` invocation pays these once per region, so they must
/// stay compile-time cheap relative to a single training epoch.
fn bench_analysis_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_overhead");
    for name in ["jpeg", "sobel"] {
        let region = benchmarks::benchmark_by_name(name)
            .expect("paper benchmark exists")
            .region();
        group.bench_function(&format!("lint/{name}"), |b| {
            b.iter(|| {
                let report = region.lint();
                criterion::black_box(report.diagnostics().len())
            });
        });
        group.bench_function(&format!("precision/{name}"), |b| {
            b.iter(|| {
                let report = region.precision().expect("entry exists");
                criterion::black_box(report.bounded())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_npu_invocation,
    bench_training_epoch,
    bench_backprop_one,
    bench_mse_eval,
    bench_forward_batch,
    bench_backprop_batch,
    bench_quant_forward,
    bench_npu_functional,
    bench_trace_replay,
    bench_core_throughput,
    bench_forward,
    bench_telemetry_overhead,
    bench_analysis_overhead
);
criterion_main!(benches);

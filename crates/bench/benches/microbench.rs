//! Criterion microbenchmarks for the substrate components: NPU invocation
//! latency per paper topology, backpropagation throughput, core-model
//! simulation rate, and one scaled-down end-to-end figure computation.

use ann::{Dataset, Mlp, Normalizer, Topology, TrainParams, Trainer};
use approx_ir::{OpClass, TraceEvent};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use npu::{NpuConfig, NpuParams, NpuSim};
use uarch::{Core, CoreConfig};

fn paper_topologies() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("fft", vec![1, 4, 4, 2]),
        ("inversek2j", vec![2, 8, 2]),
        ("jmeint", vec![18, 32, 8, 2]),
        ("jpeg", vec![64, 16, 64]),
        ("kmeans", vec![6, 8, 4, 1]),
        ("sobel", vec![9, 8, 1]),
    ]
}

fn config_for(layers: Vec<usize>) -> NpuConfig {
    let t = Topology::new(layers).unwrap();
    let (i, o) = (t.inputs(), t.outputs());
    NpuConfig::new(
        Mlp::seeded(t, 1),
        Normalizer::identity(i),
        Normalizer::identity(o),
    )
}

/// Cycle-accurate NPU invocation, per paper topology.
fn bench_npu_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("npu_invocation");
    for (name, layers) in paper_topologies() {
        let config = config_for(layers);
        let inputs: Vec<f32> = (0..config.topology().inputs())
            .map(|i| 0.1 + 0.8 * (i as f32 / 64.0))
            .collect();
        group.bench_function(name, |b| {
            let mut sim = NpuSim::new(NpuParams::default());
            sim.configure(&config).unwrap();
            b.iter(|| sim.evaluate_invocation(&inputs).unwrap());
        });
    }
    group.finish();
}

/// One backpropagation epoch over 500 samples (sobel-sized network).
fn bench_training_epoch(c: &mut Criterion) {
    let t = Topology::new(vec![9, 8, 1]).unwrap();
    let mut data = Dataset::new(9, 1);
    for k in 0..500 {
        let input: Vec<f32> = (0..9).map(|i| ((k * 7 + i) % 97) as f32 / 97.0).collect();
        let target = input.iter().sum::<f32>() / 9.0;
        data.push(&input, &[target]).unwrap();
    }
    c.bench_function("backprop_epoch_500x89w", |b| {
        b.iter_batched(
            || Mlp::seeded(t.clone(), 5),
            |mut mlp| {
                Trainer::new(TrainParams {
                    epochs: 1,
                    ..TrainParams::default()
                })
                .train(&mut mlp, &data)
            },
            BatchSize::SmallInput,
        );
    });
}

/// Core-model throughput: simulate 10k independent ALU instructions.
fn bench_core_throughput(c: &mut Criterion) {
    let events: Vec<TraceEvent> = (0..10_000)
        .map(|i| {
            TraceEvent::simple(
                i % 64,
                OpClass::IntAlu,
                [None; 3],
                Some((i % 50 + 8) as u16),
            )
        })
        .collect();
    c.bench_function("core_sim_10k_alu", |b| {
        b.iter(|| {
            let mut core = Core::new(CoreConfig::penryn_like());
            for ev in &events {
                core.feed(*ev);
            }
            core.finish().cycles
        });
    });
}

/// MLP forward pass (functional NN evaluation) per paper topology.
fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_forward");
    for (name, layers) in paper_topologies() {
        let config = config_for(layers);
        let inputs: Vec<f32> = (0..config.topology().inputs())
            .map(|i| i as f32 / 64.0)
            .collect();
        group.bench_function(name, |b| {
            b.iter(|| config.evaluate(&inputs));
        });
    }
    group.finish();
}

/// Telemetry overhead on the simulator hot loops: identical work with
/// the collector off (the default) vs. fully enabled into a black-hole
/// sink. The disabled path must stay within noise (<2%) of the seed's
/// uninstrumented loop — emission sites cost one relaxed atomic load.
fn bench_telemetry_overhead(c: &mut Criterion) {
    struct NullSink;
    impl telemetry::Sink for NullSink {
        fn record(&self, event: &telemetry::Event) {
            criterion::black_box(event.seq);
        }
    }

    let config = config_for(vec![9, 8, 1]);
    let inputs: Vec<f32> = (0..9).map(|i| 0.1 + 0.08 * i as f32).collect();
    let events: Vec<TraceEvent> = (0..10_000)
        .map(|i| {
            TraceEvent::simple(
                i % 64,
                OpClass::IntAlu,
                [None; 3],
                Some((i % 50 + 8) as u16),
            )
        })
        .collect();
    let run_core = |events: &[TraceEvent]| {
        let mut core = Core::new(CoreConfig::penryn_like());
        for ev in events {
            core.feed(*ev);
        }
        core.finish().cycles
    };

    let mut group = c.benchmark_group("telemetry_overhead");
    telemetry::reset();
    group.bench_function("npu_hot_loop/disabled", |b| {
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        b.iter(|| sim.evaluate_invocation(&inputs).unwrap());
    });
    group.bench_function("core_sim_10k_alu/disabled", |b| {
        b.iter(|| run_core(&events))
    });

    telemetry::add_sink(Box::new(NullSink));
    telemetry::set_level(telemetry::Level::Trace);
    group.bench_function("npu_hot_loop/trace_enabled", |b| {
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        b.iter(|| sim.evaluate_invocation(&inputs).unwrap());
    });
    group.bench_function("core_sim_10k_alu/trace_enabled", |b| {
        b.iter(|| run_core(&events))
    });
    telemetry::reset();
    group.finish();
}

criterion_group!(
    benches,
    bench_npu_invocation,
    bench_training_epoch,
    bench_core_throughput,
    bench_forward,
    bench_telemetry_overhead
);
criterion_main!(benches);

//! Event-based 45 nm energy model for the core and the NPU.
//!
//! The paper feeds MARSSx86 event logs into a modified McPAT, models the
//! NPU's memory arrays with CACTI 6.5, and takes multiply-add energies
//! from Galal & Horowitz's FPU study, all at 45 nm / 0.9 V / 2080 MHz.
//! None of those tools is available here, so this crate substitutes fixed
//! per-event energies of the right relative magnitude (documented on each
//! constant). Absolute joules are therefore approximate; the *ratios* —
//! how much power-hungry out-of-order pipeline work one NPU invocation
//! elides — are what drive the Figure 8b energy-reduction shape, and those
//! are preserved.
//!
//! # Example
//!
//! ```
//! use energy::{EnergyModel, EnergyParams};
//! use uarch::SimStats;
//!
//! let stats = SimStats {
//!     cycles: 1000,
//!     committed: 2000,
//!     int_ops: 2000,
//!     ..SimStats::default()
//! };
//! let model = EnergyModel::new(EnergyParams::default());
//! let breakdown = model.system_energy(&stats, None);
//! assert!(breakdown.total_pj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use npu::NpuStats;
use serde::{Deserialize, Serialize};
use uarch::SimStats;

/// Per-event energies in picojoules at 45 nm / 0.9 V.
///
/// Core-side constants approximate a Penryn-class out-of-order x86 core
/// (whole-core ~300–700 pJ of dynamic energy per instruction plus
/// substantial fixed per-cycle clock/leakage power). NPU-side constants
/// approximate a small digital ASIC: a 32-bit FP multiply-add in the
/// 10–20 pJ range (Galal & Horowitz), small-SRAM reads of a few pJ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    // --- core, per committed instruction ---
    /// Fetch + decode + rename + ROB traffic per instruction (the
    /// "power-hungry frontend stages" NPU acceleration elides).
    pub core_frontend_pj: f64,
    /// Issue-queue wakeup/select + register file read/write per
    /// instruction.
    pub core_window_pj: f64,
    /// Integer ALU operation.
    pub core_int_op_pj: f64,
    /// FP add/sub/compare.
    pub core_fp_add_pj: f64,
    /// FP multiply.
    pub core_fp_mul_pj: f64,
    /// FP divide.
    pub core_fp_div_pj: f64,
    /// FP square root.
    pub core_fp_sqrt_pj: f64,
    /// libm trig stand-in — one IR op representing an entire library
    /// call's worth of instructions, so priced like ~40 instructions.
    pub core_fp_trig_pj: f64,
    /// Branch predictor + BTB lookup.
    pub core_branch_pj: f64,
    /// NPU queue instruction (moves one 32-bit value to/from a FIFO).
    pub core_npu_queue_pj: f64,
    // --- memory hierarchy, per access ---
    /// L1D access.
    pub l1d_access_pj: f64,
    /// L2 access (on L1 miss).
    pub l2_access_pj: f64,
    /// DRAM access (on L2 miss).
    pub dram_access_pj: f64,
    // --- fixed core power ---
    /// Clock tree + leakage per cycle (scales energy with runtime, so
    /// speedups also save static energy).
    pub core_static_pj_per_cycle: f64,
    // --- NPU ---
    /// One 32-bit FP multiply-add (Galal & Horowitz-derived).
    pub npu_mac_pj: f64,
    /// One weight-buffer (512-entry SRAM) read.
    pub npu_weight_read_pj: f64,
    /// One sigmoid LUT lookup.
    pub npu_sigmoid_pj: f64,
    /// One bus broadcast.
    pub npu_bus_pj: f64,
    /// One input/output FIFO + scaling-unit pass.
    pub npu_fifo_pj: f64,
    /// One configuration word absorbed.
    pub npu_config_pj: f64,
    /// NPU leakage + clock per (active or idle) cycle — small ASIC.
    pub npu_static_pj_per_cycle: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            core_frontend_pj: 180.0,
            core_window_pj: 90.0,
            core_int_op_pj: 25.0,
            core_fp_add_pj: 60.0,
            core_fp_mul_pj: 90.0,
            core_fp_div_pj: 400.0,
            core_fp_sqrt_pj: 500.0,
            core_fp_trig_pj: 12_000.0,
            core_branch_pj: 35.0,
            core_npu_queue_pj: 25.0,
            l1d_access_pj: 55.0,
            l2_access_pj: 360.0,
            dram_access_pj: 16_000.0,
            core_static_pj_per_cycle: 450.0,
            npu_mac_pj: 16.0,
            npu_weight_read_pj: 5.0,
            npu_sigmoid_pj: 5.0,
            npu_bus_pj: 8.0,
            npu_fifo_pj: 4.0,
            npu_config_pj: 10.0,
            npu_static_pj_per_cycle: 30.0,
        }
    }
}

/// Energy of one run, split by component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic energy.
    pub core_dynamic_pj: f64,
    /// Core static (clock + leakage) energy.
    pub core_static_pj: f64,
    /// Memory hierarchy energy.
    pub memory_pj: f64,
    /// NPU dynamic energy.
    pub npu_dynamic_pj: f64,
    /// NPU static energy.
    pub npu_static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.core_dynamic_pj
            + self.core_static_pj
            + self.memory_pj
            + self.npu_dynamic_pj
            + self.npu_static_pj
    }

    /// Total energy in millijoules (for human-readable reports).
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }
}

/// Prices [`SimStats`] and [`NpuStats`] event counts into energy.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given per-event energies.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The model's per-event energies.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Core-only energy (dynamic + static + memory hierarchy).
    pub fn core_energy(&self, stats: &SimStats) -> EnergyBreakdown {
        let p = &self.params;
        let per_inst = (p.core_frontend_pj + p.core_window_pj) * stats.committed as f64;
        let fu = p.core_int_op_pj * stats.int_ops as f64
            + p.core_fp_add_pj * stats.fp_add_ops as f64
            + p.core_fp_mul_pj * stats.fp_mul_ops as f64
            + p.core_fp_div_pj * stats.fp_div_ops as f64
            + p.core_fp_sqrt_pj * stats.fp_sqrt_ops as f64
            + p.core_fp_trig_pj * stats.fp_trig_ops as f64
            + p.core_branch_pj * stats.branches as f64
            + p.core_npu_queue_pj * stats.npu_queue_ops as f64;
        let memory = p.l1d_access_pj * (stats.l1d_hits + stats.l1d_misses) as f64
            + p.l2_access_pj * (stats.l2_hits + stats.l2_misses) as f64
            + p.dram_access_pj * stats.mem_accesses as f64;
        EnergyBreakdown {
            core_dynamic_pj: per_inst + fu,
            core_static_pj: p.core_static_pj_per_cycle * stats.cycles as f64,
            memory_pj: memory,
            npu_dynamic_pj: 0.0,
            npu_static_pj: 0.0,
        }
    }

    /// NPU-only energy.
    pub fn npu_energy(&self, stats: &NpuStats) -> EnergyBreakdown {
        let p = &self.params;
        let dynamic = p.npu_mac_pj * stats.macs as f64
            + p.npu_weight_read_pj * stats.weight_reads as f64
            + p.npu_sigmoid_pj * stats.sigmoids as f64
            + p.npu_bus_pj * stats.bus_transfers as f64
            + p.npu_fifo_pj * (stats.input_reads + stats.outputs_produced) as f64
            + p.npu_config_pj * stats.config_words as f64;
        EnergyBreakdown {
            npu_dynamic_pj: dynamic,
            npu_static_pj: p.npu_static_pj_per_cycle * stats.total_cycles as f64,
            ..EnergyBreakdown::default()
        }
    }

    /// Whole-system energy for one run: core plus (optionally) NPU.
    pub fn system_energy(&self, core: &SimStats, npu: Option<&NpuStats>) -> EnergyBreakdown {
        let mut breakdown = self.core_energy(core);
        if let Some(n) = npu {
            let ne = self.npu_energy(n);
            breakdown.npu_dynamic_pj = ne.npu_dynamic_pj;
            breakdown.npu_static_pj = ne.npu_static_pj;
        }
        breakdown
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(EnergyParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(committed: u64, cycles: u64) -> SimStats {
        SimStats {
            committed,
            cycles,
            int_ops: committed,
            ..SimStats::default()
        }
    }

    #[test]
    fn more_instructions_cost_more_energy() {
        let model = EnergyModel::default();
        let small = model.core_energy(&stats(1_000, 500)).total_pj();
        let big = model.core_energy(&stats(10_000, 5_000)).total_pj();
        assert!(big > 9.0 * small);
    }

    #[test]
    fn npu_mac_is_far_cheaper_than_core_instruction() {
        // The premise of the whole paper: an NPU multiply-add costs a tiny
        // fraction of pushing an instruction through an OoO pipeline.
        let p = EnergyParams::default();
        let core_per_inst = p.core_frontend_pj + p.core_window_pj + p.core_int_op_pj;
        let npu_per_mac = p.npu_mac_pj + p.npu_weight_read_pj + p.npu_bus_pj;
        assert!(core_per_inst > 8.0 * npu_per_mac);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let model = EnergyModel::default();
        let fast = model.core_energy(&stats(1_000, 1_000));
        let slow = model.core_energy(&stats(1_000, 10_000));
        assert_eq!(fast.core_dynamic_pj, slow.core_dynamic_pj);
        assert!(slow.core_static_pj > 9.0 * fast.core_static_pj);
    }

    #[test]
    fn npu_energy_prices_all_events() {
        let model = EnergyModel::default();
        let n = NpuStats {
            macs: 100,
            weight_reads: 100,
            sigmoids: 10,
            bus_transfers: 50,
            input_reads: 9,
            outputs_produced: 1,
            config_words: 20,
            total_cycles: 200,
            ..NpuStats::default()
        };
        let e = model.npu_energy(&n);
        let p = model.params();
        let expected = 100.0 * p.npu_mac_pj
            + 100.0 * p.npu_weight_read_pj
            + 10.0 * p.npu_sigmoid_pj
            + 50.0 * p.npu_bus_pj
            + 10.0 * p.npu_fifo_pj
            + 20.0 * p.npu_config_pj;
        assert!((e.npu_dynamic_pj - expected).abs() < 1e-9);
        assert!((e.npu_static_pj - 200.0 * p.npu_static_pj_per_cycle).abs() < 1e-9);
    }

    #[test]
    fn system_energy_combines_components() {
        let model = EnergyModel::default();
        let core = stats(1_000, 800);
        let npu_stats = NpuStats {
            macs: 500,
            total_cycles: 800,
            ..NpuStats::default()
        };
        let combined = model.system_energy(&core, Some(&npu_stats));
        let core_only = model.system_energy(&core, None);
        assert!(combined.total_pj() > core_only.total_pj());
        assert_eq!(combined.core_dynamic_pj, core_only.core_dynamic_pj);
    }

    #[test]
    fn trig_stand_in_is_priced_like_a_library_call() {
        // A sin/cos IR op represents ~40-60 x86 instructions of libm code;
        // its energy must dwarf a single FP add.
        let p = EnergyParams::default();
        assert!(p.core_fp_trig_pj > 30.0 * p.core_fp_add_pj);
    }
}
